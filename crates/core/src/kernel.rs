//! The kernel proper: state, block executor, scheduling, entry/exit and
//! interrupt delivery.
//!
//! System-call handling, IPC, object creation and the VM operations live in
//! [`crate::syscall`] (they are `impl Kernel` blocks there); the IPC
//! fastpath is in [`crate::fastpath`]. This module owns:
//!
//! * the kernel state ([`Kernel`]) and its configuration
//!   ([`KernelConfig`]) selecting the paper's *before*/*after* designs;
//! * the **block executor** ([`Kernel::blk`]) that charges every modelled
//!   instruction of a [`crate::kprog::Block`] to the `rt_hw` machine;
//! * **preemption points** ([`Kernel::preemption_point`]) — the §2.1
//!   mechanism: check for a pending interrupt; if one is pending, save
//!   restart state and unwind;
//! * the **scheduler glue** implementing lazy, Benno and Benno+bitmap
//!   `chooseThread` with per-step cost charging (§3.1–3.2);
//! * the **interrupt path** — entry, AVIC read, table lookup, notification
//!   signal, wake, schedule, exit — the path whose worst case the paper
//!   reduces and pins (§4);
//! * kernel **exit**, including the final pending-interrupt check.

use std::collections::HashMap;
use std::sync::Arc;

use rt_hw::{Addr, Cycles, HwConfig, InstrClass, IrqLine, Machine};

use crate::cap::{CapType, SlotRef};
use crate::cnode::CNode;
use crate::decision::DecisionSource;
use crate::ep::Endpoint;
use crate::irqk::IrqTable;
use crate::kprog::{self, Block, Ik, Layout, D};
use crate::ntfn::{self, Notification};
use crate::obj::{BootAlloc, ObjId, ObjKind, ObjStore};
use crate::preempt::{PreemptResult, Preempted};
use crate::sched::RunQueues;
use crate::smp::{SmpState, IPI_RESCHED_LINE, IPI_SHOOTDOWN_LINE};
use crate::tcb::{Tcb, ThreadState, TCB_SIZE_BITS};
use crate::vspace::asid::AsidTable;

/// Scheduler design (§3.1–3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// Lazy scheduling (Fig. 2) — the original design.
    Lazy,
    /// Benno scheduling (Fig. 3) — run queue holds only runnable threads.
    Benno,
    /// Benno scheduling plus the two-level priority bitmap (§3.2).
    BennoBitmap,
}

/// Virtual-memory design (§3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VmKind {
    /// ASID lookup table (Fig. 4) — the original design.
    Asid,
    /// Shadow page tables (Fig. 5) — the revised design.
    ShadowPt,
}

/// Which kernel the experiments run: the paper's *before* or *after*
/// configuration, or any mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Scheduler design.
    pub sched: SchedKind,
    /// VM design.
    pub vm: VmKind,
    /// Whether preemption points are compiled in (§3.3–3.5).
    pub preemption_points: bool,
    /// Whether the IPC fastpath is enabled (§6.1).
    pub fastpath: bool,
}

impl KernelConfig {
    /// The paper's *before* kernel: lazy scheduling, ASIDs, no preemption
    /// points (Table 2, first column).
    pub fn before() -> KernelConfig {
        KernelConfig {
            sched: SchedKind::Lazy,
            vm: VmKind::Asid,
            preemption_points: false,
            fastpath: true,
        }
    }

    /// The paper's *after* kernel: Benno + bitmap scheduling, shadow page
    /// tables, preemption points (Table 2, "after changes").
    pub fn after() -> KernelConfig {
        KernelConfig {
            sched: SchedKind::BennoBitmap,
            vm: VmKind::ShadowPt,
            preemption_points: true,
            fastpath: true,
        }
    }
}

/// Interrupt line reserved for the timer tick: an unbound line 0 ends the
/// current timeslice rather than signalling a notification.
pub const TIMER_LINE: u8 = 0;

/// The four kernel entry points the analysis bounds (§5.2: "these paths
/// begin at one of the kernel's exception vectors").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntryPoint {
    /// System call (SWI).
    Syscall,
    /// Undefined instruction.
    Undefined,
    /// Page fault (prefetch/data abort).
    PageFault,
    /// Hardware interrupt.
    Interrupt,
}

impl EntryPoint {
    /// All entry points, in the paper's table order.
    pub const ALL: [EntryPoint; 4] = [
        EntryPoint::Syscall,
        EntryPoint::Undefined,
        EntryPoint::PageFault,
        EntryPoint::Interrupt,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EntryPoint::Syscall => "System call",
            EntryPoint::Undefined => "Undefined instruction",
            EntryPoint::PageFault => "Page fault",
            EntryPoint::Interrupt => "Interrupt",
        }
    }
}

/// Pending scheduling decision (seL4's `ksSchedulerAction`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedAction {
    /// Keep running the current thread.
    #[default]
    ResumeCurrent,
    /// Direct-switch to a thread woken by IPC (§3.1 Benno scheduling:
    /// "we switch directly to it and do not place it into the run queue").
    SwitchTo(ObjId),
    /// Run the full `chooseThread`.
    ChooseNew,
}

/// Counters the experiments read out.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Kernel entries by type.
    pub syscall_entries: u64,
    /// Fault entries.
    pub fault_entries: u64,
    /// Interrupt entries.
    pub interrupt_entries: u64,
    /// Preemption points taken (operation actually unwound).
    pub preemptions: u64,
    /// System calls restarted after preemption (§2.1).
    pub restarts: u64,
    /// IPC fastpath successes (§6.1).
    pub fastpath_hits: u64,
    /// Blocked threads the lazy scheduler dequeued (§3.1's pathological
    /// work).
    pub lazy_dequeues: u64,
}

/// Per-block profile entry: how often a block ran and what it cost in
/// total (the observed "hottest path" material of an attribution report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStat {
    /// Executions of the block.
    pub count: u64,
    /// Total cycles charged across those executions.
    pub cycles: Cycles,
}

/// One delivered interrupt, for response-time accounting.
#[derive(Clone, Copy, Debug)]
pub struct IrqResponse {
    /// Interrupt line.
    pub line: IrqLine,
    /// Cycle the device raised the line.
    pub raised: Cycles,
    /// Cycle the kernel acknowledged it (end of the kernel's interrupt
    /// path — the latency the paper's analysis bounds).
    pub kernel_ack: Cycles,
    /// Cycle the bound handler thread actually started running, if it did.
    pub delivered: Option<Cycles>,
}

/// The microkernel.
pub struct Kernel {
    /// Design configuration (before/after).
    pub config: KernelConfig,
    /// The machine this kernel runs on.
    pub machine: Machine,
    /// All kernel objects.
    pub objs: ObjStore,
    /// Scheduler run queues + priority bitmap.
    pub queues: RunQueues,
    /// Global ASID table (legacy VM design; unused under shadow PTs).
    pub asid_table: AsidTable,
    /// IRQ dispatch table.
    pub irq_table: IrqTable,
    /// Code layout of the kernel "binary". Immutable after boot, so
    /// snapshots share it via the [`Arc`] instead of copying it.
    pub layout: Arc<Layout>,
    /// Statistics.
    pub stats: KernelStats,
    /// Interrupt response log.
    pub irq_log: Vec<IrqResponse>,
    /// When `Some`, every executed block is appended (CFG-correspondence
    /// tests and path studies).
    pub trace: Option<Vec<Block>>,
    /// When `Some`, per-block execution counts and cycles are accumulated
    /// (the hottest-path side of an attribution report).
    pub profile: Option<HashMap<Block, BlockStat>>,
    cur: ObjId,
    idle: ObjId,
    sched_action: SchedAction,
    alloc: BootAlloc,
    /// Objects whose teardown is on the (Rust) call stack right now; a
    /// capability inside a CNode can reference an ancestor being destroyed
    /// (even the CNode itself), and this set breaks the recursion exactly
    /// as seL4's zombie caps do.
    pub(crate) destroying: Vec<ObjId>,
    /// Threads woken by an IRQ and not yet scheduled: tcb -> log index.
    pending_delivery: HashMap<ObjId, usize>,
    /// Installed schedule-decision source ([`crate::decision`]); `None`
    /// (the production state) means no poll-time injection at all.
    decisions: Option<Box<dyn DecisionSource>>,
    /// SMP extension ([`crate::smp`]); `None` (the production
    /// single-core state) compiles every SMP path out, and `Some` with
    /// `n_cores == 1` is behaviourally identical to `None` — the
    /// differential the SMP test layer pins.
    smp: Option<Box<SmpState>>,
}

/// A complete, decision-source-free copy of a kernel's state, machine
/// included — the fork point stateful exploration resumes from.
///
/// Every field of [`Kernel`] is plain clonable data *except* the boxed
/// [`DecisionSource`], so the snapshot is exactly "the kernel minus its
/// instrumentation hook": [`Kernel::snapshot`] requires the source to be
/// detached, and [`KernelSnapshot::restore`] always produces a kernel
/// with `decisions == None` (the production state the decision
/// differential pins as bit-identical to an uninstrumented run). That
/// makes the snapshot `Send + Sync` by construction, so frontier branches
/// can carry `Arc<KernelSnapshot>` forks across worker threads even
/// though an instrumented `Kernel` itself never crosses one.
#[derive(Clone, Debug)]
pub struct KernelSnapshot {
    config: KernelConfig,
    machine: Machine,
    objs: ObjStore,
    queues: RunQueues,
    asid_table: AsidTable,
    irq_table: IrqTable,
    layout: Arc<Layout>,
    stats: KernelStats,
    irq_log: Vec<IrqResponse>,
    trace: Option<Vec<Block>>,
    profile: Option<HashMap<Block, BlockStat>>,
    cur: ObjId,
    idle: ObjId,
    sched_action: SchedAction,
    alloc: BootAlloc,
    destroying: Vec<ObjId>,
    pending_delivery: HashMap<ObjId, usize>,
    smp: Option<Box<SmpState>>,
}

impl KernelSnapshot {
    /// Reconstructs a live kernel bit-identical to the one
    /// [`Kernel::snapshot`] captured, with no decision source installed.
    /// The snapshot is unconsumed — one capture can seed any number of
    /// forks.
    pub fn restore(&self) -> Kernel {
        Kernel {
            config: self.config,
            machine: self.machine.clone(),
            objs: self.objs.clone(),
            queues: self.queues.clone(),
            asid_table: self.asid_table.clone(),
            irq_table: self.irq_table.clone(),
            layout: self.layout.clone(),
            stats: self.stats,
            irq_log: self.irq_log.clone(),
            trace: self.trace.clone(),
            profile: self.profile.clone(),
            cur: self.cur,
            idle: self.idle,
            sched_action: self.sched_action,
            alloc: self.alloc.clone(),
            destroying: self.destroying.clone(),
            pending_delivery: self.pending_delivery.clone(),
            decisions: None,
            smp: self.smp.clone(),
        }
    }

    /// Restores the snapshot *into* an existing kernel, reusing its heap
    /// buffers (cache line arrays, object slots, run queues, log vectors)
    /// instead of allocating fresh ones. The result is bit-identical to
    /// [`KernelSnapshot::restore`] — every field is overwritten, and the
    /// decision source of the target (if any) is dropped so the restored
    /// kernel again has `decisions == None`. This is the explorer's
    /// per-branch fast path: each worker keeps one scratch kernel and
    /// restores thousands of forks into it per wave, turning fork cost
    /// into a handful of `memcpy`s.
    pub fn restore_into(&self, k: &mut Kernel) {
        k.config = self.config;
        k.machine.copy_from(&self.machine);
        k.objs.copy_from(&self.objs);
        k.queues.copy_from(&self.queues);
        k.asid_table = self.asid_table.clone();
        k.irq_table = self.irq_table.clone();
        k.layout = self.layout.clone();
        k.stats = self.stats;
        k.irq_log.clone_from(&self.irq_log);
        k.trace.clone_from(&self.trace);
        k.profile.clone_from(&self.profile);
        k.cur = self.cur;
        k.idle = self.idle;
        k.sched_action = self.sched_action;
        k.alloc = self.alloc.clone();
        k.destroying.clone_from(&self.destroying);
        k.pending_delivery.clone_from(&self.pending_delivery);
        k.decisions = None;
        k.smp.clone_from(&self.smp);
    }
}

// The whole point of the snapshot type: it must stay shareable across
// worker threads no matter what fields are added later.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KernelSnapshot>();
};

impl Kernel {
    /// Boots a kernel on a fresh machine. The idle thread is created; all
    /// other objects are made by the caller (standing in for the root
    /// task) via the `boot_*` constructors or at runtime via retype.
    pub fn new(config: KernelConfig, hw: HwConfig) -> Kernel {
        let machine = Machine::new(hw);
        let mut objs = ObjStore::new();
        // Objects live in RAM above the kernel image's load region.
        let mut alloc = BootAlloc::new(0x8010_0000, 0x0400_0000);
        let idle_base = alloc.alloc(TCB_SIZE_BITS);
        let idle = objs.insert(idle_base, TCB_SIZE_BITS, ObjKind::Tcb(Tcb::new("idle", 0)));
        objs.tcb_mut(idle).state = ThreadState::Idle;
        Kernel {
            config,
            machine,
            objs,
            queues: RunQueues::new(),
            asid_table: AsidTable::new(),
            irq_table: IrqTable::new(),
            layout: Arc::new(Layout::new()),
            stats: KernelStats::default(),
            irq_log: Vec::new(),
            trace: None,
            profile: None,
            cur: idle,
            idle,
            sched_action: SchedAction::ResumeCurrent,
            alloc,
            destroying: Vec::new(),
            pending_delivery: HashMap::new(),
            decisions: None,
            smp: None,
        }
    }

    /// Installs a schedule-decision source, consulted at every
    /// preemption-point poll (see [`crate::decision`]).
    pub fn set_decision_source(&mut self, src: Box<dyn DecisionSource>) {
        self.decisions = Some(src);
    }

    /// Removes the installed decision source, returning the kernel to the
    /// uninstrumented production path.
    pub fn clear_decision_source(&mut self) -> Option<Box<dyn DecisionSource>> {
        self.decisions.take()
    }

    /// Captures the kernel's complete state — machine included — as a
    /// [`KernelSnapshot`]. Restoring the snapshot yields a kernel
    /// bit-identical to this one (the decision-differential contract:
    /// `decisions == None` is the uninstrumented production state, and a
    /// snapshot always restores to it).
    ///
    /// # Panics
    ///
    /// If a decision source is installed. Sources are arbitrary boxed
    /// state (closures over run controllers) and cannot be cloned;
    /// callers must [`Self::clear_decision_source`] first and re-install
    /// on whichever kernel — this one, or a restored fork — runs next.
    pub fn snapshot(&self) -> KernelSnapshot {
        assert!(
            self.decisions.is_none(),
            "detach the decision source before snapshotting"
        );
        KernelSnapshot {
            config: self.config,
            machine: self.machine.clone(),
            objs: self.objs.clone(),
            queues: self.queues.clone(),
            asid_table: self.asid_table.clone(),
            irq_table: self.irq_table.clone(),
            layout: self.layout.clone(),
            stats: self.stats,
            irq_log: self.irq_log.clone(),
            trace: self.trace.clone(),
            profile: self.profile.clone(),
            cur: self.cur,
            idle: self.idle,
            sched_action: self.sched_action,
            alloc: self.alloc.clone(),
            destroying: self.destroying.clone(),
            pending_delivery: self.pending_delivery.clone(),
            smp: self.smp.clone(),
        }
    }

    /// The currently running thread.
    pub fn current(&self) -> ObjId {
        self.cur
    }

    /// The idle thread.
    pub fn idle_thread(&self) -> ObjId {
        self.idle
    }

    /// Returns `true` when the idle thread is running.
    pub fn is_idle(&self) -> bool {
        self.cur == self.idle
    }

    /// Starts recording executed blocks.
    pub fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the trace.
    pub fn take_trace(&mut self) -> Vec<Block> {
        self.trace.take().unwrap_or_default()
    }

    /// Starts accumulating a per-block execution profile.
    pub fn start_profile(&mut self) {
        self.profile = Some(HashMap::new());
    }

    /// Stops profiling and returns counts + cycles per executed block.
    pub fn take_profile(&mut self) -> HashMap<Block, BlockStat> {
        self.profile.take().unwrap_or_default()
    }

    // --- Boot-time object construction (root-task stand-in; no timing) ---

    /// Creates a thread at boot.
    pub fn boot_tcb(&mut self, name: &str, prio: u8) -> ObjId {
        let base = self.alloc.alloc(TCB_SIZE_BITS);
        self.objs
            .insert(base, TCB_SIZE_BITS, ObjKind::Tcb(Tcb::new(name, prio)))
    }

    /// Creates an endpoint at boot.
    pub fn boot_endpoint(&mut self) -> ObjId {
        let base = self.alloc.alloc(Endpoint::SIZE_BITS);
        self.objs.insert(
            base,
            Endpoint::SIZE_BITS,
            ObjKind::Endpoint(Endpoint::new()),
        )
    }

    /// Creates a notification at boot.
    pub fn boot_ntfn(&mut self) -> ObjId {
        let base = self.alloc.alloc(Notification::SIZE_BITS);
        self.objs.insert(
            base,
            Notification::SIZE_BITS,
            ObjKind::Notification(Notification::new()),
        )
    }

    /// Creates a CNode at boot.
    pub fn boot_cnode(&mut self, radix_bits: u8) -> ObjId {
        let sb = CNode::size_bits(radix_bits);
        let base = self.alloc.alloc(sb);
        self.objs
            .insert(base, sb, ObjKind::CNode(CNode::new(radix_bits)))
    }

    /// Creates an untyped object of `1 << size_bits` bytes at boot.
    pub fn boot_untyped(&mut self, size_bits: u8) -> ObjId {
        let base = self.alloc.alloc(size_bits);
        self.objs.insert(
            base,
            size_bits,
            ObjKind::Untyped(crate::untyped::Untyped::new()),
        )
    }

    /// Access to the boot allocator (for builders that need raw placement,
    /// e.g. the Fig. 7 deep capability space).
    pub fn boot_alloc(&mut self) -> &mut BootAlloc {
        &mut self.alloc
    }

    /// Programs a whole batch of future device interrupts in one call.
    ///
    /// This is the bulk event-injection hook used by load generators
    /// (rt-load) that pre-compute open-loop arrival schedules with tens of
    /// thousands of raises: it forwards to
    /// [`rt_hw::IrqController::schedule_batch`], which appends every event
    /// and sorts the firing schedule once, instead of the O(n²) re-sort that
    /// per-event [`rt_hw::IrqController::schedule`] calls would cost.
    /// Scheduled lines fire automatically as kernel execution is charged to
    /// the machine (see [`rt_hw::Machine::charge`]).
    pub fn inject_irq_schedule(&mut self, events: impl IntoIterator<Item = (Cycles, IrqLine)>) {
        self.machine.irq.schedule_batch(events);
    }

    /// Makes `tcb` runnable and enqueues it (boot-time resume; charges
    /// nothing). The highest-priority runnable thread becomes current, as
    /// it would after a real scheduling pass.
    pub fn boot_resume(&mut self, tcb: ObjId) {
        let st = &mut self.objs.tcb_mut(tcb).state;
        assert!(
            matches!(st, ThreadState::Inactive),
            "boot_resume on a live thread"
        );
        *st = ThreadState::Running;
        if self.smp_active() {
            let aff = self.objs.tcb(tcb).affinity;
            if aff != self.cur_core() {
                // Boot-time start on a remote core: queue it there and
                // kick the core (uncharged, like the rest of boot).
                {
                    let smp = self.smp.as_deref_mut().expect("smp_active");
                    smp.slots[aff as usize].queues.enqueue(&mut self.objs, tcb);
                }
                self.send_resched_ipi(aff);
                return;
            }
        }
        self.queues.enqueue(&mut self.objs, tcb);
        self.schedule_no_charge();
    }

    /// Boot-time scheduling without timing charges, used to pick the first
    /// thread before measurement begins.
    fn schedule_no_charge(&mut self) {
        let cur_runnable = self.cur != self.idle && self.objs.tcb(self.cur).state.is_runnable();
        let cur_prio = if cur_runnable {
            Some(self.objs.tcb(self.cur).prio)
        } else {
            None
        };
        let Some(best) = self.queues.choose_bitmap() else {
            return;
        };
        let best_prio = self.objs.tcb(best).prio;
        if cur_prio.is_some_and(|p| p >= best_prio) {
            return; // current keeps the CPU
        }
        if cur_runnable && !self.objs.tcb(self.cur).in_runqueue {
            self.queues.enqueue(&mut self.objs, self.cur);
        }
        self.queues.dequeue(&mut self.objs, best);
        self.cur = best;
        self.sched_action = SchedAction::ResumeCurrent;
    }

    // --- The block executor ------------------------------------------------

    /// Executes (charges) one kernel basic block. `objs` supplies the data
    /// address for each object-class memory operand, in order.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the block's spec — a
    /// drift between the kernel logic and the kernel "binary" model.
    pub fn blk(&mut self, b: Block, objs: &[Addr]) {
        if let Some(t) = &mut self.trace {
            t.push(b);
        }
        let profile_t0 = self.profile.is_some().then(|| self.machine.now());
        let spec = b.spec();
        assert_eq!(
            objs.len() as u32,
            spec.obj_ops(),
            "{b:?}: expected {} object operands, got {}",
            spec.obj_ops(),
            objs.len()
        );
        let mut pc = self.layout.addr_of(b);
        let mut oi = 0usize;
        let mut auto_i = 0u32; // index for stack/global slot assignment
        for ik in spec.instrs {
            match *ik {
                Ik::A(n) => {
                    self.machine.exec_straight(pc, n as u32);
                    pc += 4 * n as u32;
                }
                Ik::Z => {
                    self.machine.exec(InstrClass::Clz, pc);
                    pc += 4;
                }
                Ik::M => {
                    self.machine.exec(InstrClass::Mul, pc);
                    pc += 4;
                }
                Ik::L(d, n) => {
                    for _ in 0..n {
                        match d {
                            D::Ob => {
                                let a = objs[oi];
                                oi += 1;
                                self.machine.touch_read(pc, a);
                            }
                            D::St => {
                                self.machine.touch_read(pc, kprog::stack_addr(auto_i));
                                auto_i += 1;
                            }
                            D::Gl => {
                                self.machine.touch_read(pc, kprog::global_addr(b, auto_i));
                                auto_i += 1;
                            }
                            D::Dv => {
                                // Uncached device register: fixed latency.
                                self.machine.exec(InstrClass::Alu, pc);
                                self.machine.advance(kprog::DEVICE_ACCESS_CYCLES - 1);
                            }
                        }
                        pc += 4;
                    }
                }
                Ik::S(d, n) => {
                    for _ in 0..n {
                        match d {
                            D::Ob => {
                                let a = objs[oi];
                                oi += 1;
                                self.machine.touch_write(pc, a);
                            }
                            D::St => {
                                self.machine.touch_write(pc, kprog::stack_addr(auto_i));
                                auto_i += 1;
                            }
                            D::Gl => {
                                self.machine.touch_write(pc, kprog::global_addr(b, auto_i));
                                auto_i += 1;
                            }
                            D::Dv => {
                                self.machine.exec(InstrClass::Alu, pc);
                                self.machine.advance(kprog::DEVICE_ACCESS_CYCLES - 1);
                            }
                        }
                        pc += 4;
                    }
                }
                Ik::B => {
                    self.machine.exec_branch(pc, true);
                    pc += 4;
                }
            }
        }
        if let Some(t0) = profile_t0 {
            let dt = self.machine.now() - t0;
            let p = self.profile.as_mut().expect("profiling was on at entry");
            let e = p.entry(b).or_default();
            e.count += 1;
            e.cycles += dt;
        }
    }

    /// Shorthand for blocks with no object operands.
    pub fn blk0(&mut self, b: Block) {
        self.blk(b, &[]);
    }

    /// Address of a TCB field (timing operand helper).
    pub fn tcb_addr(&self, tcb: ObjId, off: u32) -> Addr {
        self.objs.get(tcb).base + off
    }

    /// Address of an object's base (timing operand helper).
    pub fn obj_addr(&self, obj: ObjId, off: u32) -> Addr {
        self.objs.get(obj).base + off
    }

    // --- Preemption points --------------------------------------------------

    /// A preemption point (§2.1): in the *after* kernel, check for a
    /// pending interrupt; if one is pending, mark the current thread for
    /// restart and unwind. The *before* kernel compiles to nothing.
    pub fn preemption_point(&mut self) -> PreemptResult {
        if !self.config.preemption_points {
            return Ok(());
        }
        let core = self.cur_core();
        if let Some(src) = self.decisions.as_mut() {
            // An injected arrival models a device asserting the line in
            // the instant before this poll samples the pending mask. The
            // consultation itself charges no cycles and, when the source
            // declines, mutates nothing — the production path stays
            // bit-identical.
            if let Some(line) = src.preemption_poll_on(core, &self.machine.irq) {
                let now = self.machine.now();
                self.machine.irq.raise(line, now);
            }
        }
        self.machine.trace_phase("preempt-check");
        self.blk0(Block::PreemptCheck);
        if self.machine.irq.has_pending() {
            self.machine.trace_phase("preempt-fire");
            let st = self.tcb_addr(self.cur, crate::tcb::OFF_STATE);
            let ctx = self.tcb_addr(self.cur, crate::tcb::OFF_CONTEXT);
            self.blk(Block::PreemptSave, &[st, ctx]);
            self.objs.tcb_mut(self.cur).state = ThreadState::Restart;
            self.stats.preemptions += 1;
            return Err(Preempted);
        }
        Ok(())
    }

    // --- Waking and scheduling ----------------------------------------------

    /// Makes `t` runnable after an IPC delivered to it. `cur_yields` says
    /// whether the current thread is about to stop running (blocked), in
    /// which case an equal-priority wake switches directly.
    pub(crate) fn wake_thread(&mut self, t: ObjId, cur_yields: bool) {
        let st = self.tcb_addr(t, crate::tcb::OFF_STATE);
        let pr = self.tcb_addr(t, crate::tcb::OFF_PRIO);
        self.blk(Block::WakeThread, &[st, pr]);
        self.objs.tcb_mut(t).state = ThreadState::Running;
        if self.smp_active() && self.objs.tcb(t).affinity != self.cur_core() {
            // Cross-core wake (DESIGN.md §14): never direct-switch to a
            // thread homed on another core — enqueue it there and kick
            // the core with a reschedule IPI. Lazy scheduling may find
            // the thread still queued (on its affinity core, by the
            // migration invariant); then only the kick is needed.
            if !self.objs.tcb(t).in_runqueue {
                self.charge_enqueue(t);
                self.enqueue_remote(t);
            } else {
                let aff = self.objs.tcb(t).affinity;
                self.machine.advance(kprog::DEVICE_ACCESS_CYCLES);
                self.send_resched_ipi(aff);
            }
            return;
        }
        let t_prio = self.objs.tcb(t).prio;
        let cur_prio = self.objs.tcb(self.cur).prio;
        let eligible = if cur_yields {
            t_prio >= cur_prio
        } else {
            t_prio > cur_prio
        };
        match self.config.sched {
            SchedKind::Lazy => {
                // Lazy scheduling: a thread that blocked while queued is
                // still queued; one that has never run must be entered.
                if !self.objs.tcb(t).in_runqueue {
                    self.charge_enqueue(t);
                    self.queues.enqueue(&mut self.objs, t);
                }
                if eligible {
                    self.blk0(Block::DirectSwitch);
                    self.sched_action = SchedAction::SwitchTo(t);
                }
            }
            SchedKind::Benno | SchedKind::BennoBitmap => {
                if eligible {
                    // §3.1: switch directly, do not enqueue the woken
                    // thread.
                    self.blk0(Block::DirectSwitch);
                    self.sched_action = SchedAction::SwitchTo(t);
                } else {
                    self.charge_enqueue(t);
                    self.queues.enqueue(&mut self.objs, t);
                    if self.config.sched == SchedKind::BennoBitmap {
                        self.blk0(Block::BitmapSet);
                    }
                }
            }
        }
    }

    /// Makes a thread runnable outside IPC wake (cancelled IPC, resume):
    /// always enqueued, never direct-switched.
    pub(crate) fn make_runnable_enqueue(&mut self, t: ObjId) {
        let st = self.tcb_addr(t, crate::tcb::OFF_STATE);
        let pr = self.tcb_addr(t, crate::tcb::OFF_PRIO);
        self.blk(Block::WakeThread, &[st, pr]);
        if !self.objs.tcb(t).in_runqueue {
            self.charge_enqueue(t);
            if self.smp_active() && self.objs.tcb(t).affinity != self.cur_core() {
                self.enqueue_remote(t);
            } else {
                self.queues.enqueue(&mut self.objs, t);
                if self.config.sched == SchedKind::BennoBitmap {
                    self.blk0(Block::BitmapSet);
                }
            }
        }
        if self.sched_action == SchedAction::ResumeCurrent
            && !self.objs.tcb(self.cur).state.is_runnable()
        {
            self.sched_action = SchedAction::ChooseNew;
        }
    }

    fn charge_enqueue(&mut self, t: ObjId) {
        let a = self.tcb_addr(t, crate::tcb::OFF_SCHED_PREV);
        let b = self.tcb_addr(t, crate::tcb::OFF_SCHED_NEXT);
        let st = self.tcb_addr(t, crate::tcb::OFF_STATE);
        let pr = self.tcb_addr(t, crate::tcb::OFF_PRIO);
        let tail = self.tcb_addr(t, 0x24);
        self.blk(Block::EnqueueThread, &[pr, a, b, st, tail]);
    }

    fn charge_dequeue(&mut self, t: ObjId) {
        let a = self.tcb_addr(t, crate::tcb::OFF_SCHED_PREV);
        let b = self.tcb_addr(t, crate::tcb::OFF_SCHED_NEXT);
        let st = self.tcb_addr(t, crate::tcb::OFF_STATE);
        let pr = self.tcb_addr(t, crate::tcb::OFF_PRIO);
        let c = self.tcb_addr(t, 0x24);
        let d = self.tcb_addr(t, 0x28);
        self.blk(Block::DequeueThread, &[pr, a, b, st, c, d]);
    }

    /// Suspends thread `t` (as a root-task stand-in would via TcbSuspend):
    /// dequeues it if queued, marks it inactive and reschedules. Used by
    /// [`crate::system::System`] when a script runs dry, and by external
    /// harnesses (the rt-explore engine) driving threads directly.
    pub fn suspend_thread(&mut self, t: ObjId) {
        if self.objs.tcb(t).in_runqueue {
            self.queues.dequeue(&mut self.objs, t);
        }
        self.objs.tcb_mut(t).state = ThreadState::Inactive;
        self.force_choose_new();
        self.schedule();
    }

    /// Resolves the pending scheduling decision — runs on every kernel
    /// exit.
    pub(crate) fn schedule(&mut self) {
        let action = std::mem::take(&mut self.sched_action);
        match action {
            SchedAction::ResumeCurrent => {
                if self.objs.tcb(self.cur).state.is_runnable()
                    || self.objs.tcb(self.cur).state == ThreadState::Idle
                {
                    return;
                }
                // Current blocked with no explicit decision: choose.
                self.choose_and_commit();
            }
            SchedAction::SwitchTo(t) => {
                // The displaced thread is entered into the run queue if it
                // is still runnable and not queued — §3.1: "the run queue's
                // consistency can be re-established at preemption time".
                self.requeue_current();
                // Benno: the woken thread was never enqueued. Lazy: it may
                // still be queued — leave it there (Fig. 2 tolerates this).
                if self.config.sched != SchedKind::Lazy && self.objs.tcb(t).in_runqueue {
                    self.charge_dequeue(t);
                    self.queues.dequeue(&mut self.objs, t);
                    if self.config.sched == SchedKind::BennoBitmap
                        && self.queues.head(self.objs.tcb(t).prio).is_none()
                    {
                        self.blk0(Block::BitmapClear);
                    }
                }
                self.commit(t);
            }
            SchedAction::ChooseNew => self.choose_and_commit(),
        }
    }

    /// The three `chooseThread` implementations with per-step charging.
    fn choose_and_commit(&mut self) {
        // A preempted-but-runnable current thread must be queued before we
        // choose (it may well be the winner — unless affinity routes it
        // to another core, in which case it migrates now).
        self.requeue_current();
        let chosen = match self.config.sched {
            SchedKind::Lazy => self.choose_lazy_charged(),
            SchedKind::Benno => self.choose_benno_charged(),
            SchedKind::BennoBitmap => self.choose_bitmap_charged(),
        };
        match chosen {
            Some(t) => {
                // Benno-family: the chosen thread leaves the queue; lazy
                // leaves it at the head (Fig. 2).
                if self.config.sched != SchedKind::Lazy {
                    self.charge_dequeue(t);
                    self.queues.dequeue(&mut self.objs, t);
                    if self.config.sched == SchedKind::BennoBitmap
                        && self.queues.head(self.objs.tcb(t).prio).is_none()
                    {
                        self.blk0(Block::BitmapClear);
                    }
                }
                self.commit(t);
            }
            None => {
                self.blk0(Block::SchedIdle);
                self.commit(self.idle);
            }
        }
    }

    /// Fig. 2 with cost charging: scan priorities, dequeue blocked threads
    /// found at queue heads.
    fn choose_lazy_charged(&mut self) -> Option<ObjId> {
        for prio in (0..crate::NUM_PRIOS as usize).rev() {
            self.blk0(Block::SchedPrioScan);
            while let Some(head) = self.queues.head(prio as u8) {
                let st = self.tcb_addr(head, crate::tcb::OFF_STATE);
                self.blk(Block::SchedLazyIter, &[st]);
                if self.objs.tcb(head).state.is_runnable() {
                    return Some(head);
                }
                let a = self.tcb_addr(head, crate::tcb::OFF_SCHED_PREV);
                let b = self.tcb_addr(head, crate::tcb::OFF_SCHED_NEXT);
                let c = self.tcb_addr(head, 0x24);
                let d = self.tcb_addr(head, 0x28);
                self.blk(
                    Block::SchedLazyDequeue,
                    &[st, a, b, c, d, self.tcb_addr(head, crate::tcb::OFF_PRIO)],
                );
                self.queues.dequeue(&mut self.objs, head);
                self.stats.lazy_dequeues += 1;
            }
        }
        None
    }

    /// Fig. 3 with cost charging: scan priorities for a non-empty queue.
    fn choose_benno_charged(&mut self) -> Option<ObjId> {
        for prio in (0..crate::NUM_PRIOS as usize).rev() {
            self.blk0(Block::SchedPrioScan);
            if let Some(h) = self.queues.head(prio as u8) {
                debug_assert!(
                    self.objs.tcb(h).state.is_runnable(),
                    "Benno invariant: queued thread must be runnable"
                );
                return Some(h);
            }
        }
        None
    }

    /// §3.2 with cost charging: two loads and two CLZ.
    fn choose_bitmap_charged(&mut self) -> Option<ObjId> {
        self.blk0(Block::SchedBitmap);
        self.queues.choose_bitmap()
    }

    /// Installs `t` as the current thread, charging the commit and (if the
    /// thread changes) the context switch.
    fn commit(&mut self, t: ObjId) {
        let st = self.tcb_addr(t, crate::tcb::OFF_STATE);
        self.blk(Block::SchedCommit, &[st]);
        if t != self.cur {
            let ctx: Vec<Addr> = (0..8)
                .map(|i| self.tcb_addr(t, crate::tcb::OFF_CONTEXT + 4 * i))
                .collect();
            self.blk(Block::CtxSwitch, &ctx);
            self.cur = t;
        }
        // A scheduled Restart-state thread is about to re-execute its
        // trapped system call; accounting only (the System harness drives
        // the re-execution).
        if self.objs.tcb(t).state == ThreadState::Restart {
            self.stats.restarts += 1;
        }
        // IRQ delivery latency: the woken handler thread is now running.
        if let Some(ix) = self.pending_delivery.remove(&t) {
            let now = self.machine.now();
            self.irq_log[ix].delivered = Some(now);
        }
    }

    // --- Interrupt path -----------------------------------------------------

    /// The kernel's interrupt handler body (no entry/exit): AVIC read,
    /// table lookup, notification signal, wake, ack. Called from the IRQ
    /// vector, from preemption points, and from the exit check.
    pub(crate) fn interrupt_core(&mut self) {
        self.blk0(Block::IrqGet);
        let Some(line) = self.machine.irq.pending_unmasked() else {
            self.blk0(Block::IrqSpurious);
            return;
        };
        self.blk0(Block::IrqLookup);
        let binding = self.irq_table.lookup(line.0);
        let raised = self.machine.irq.ack(line).unwrap_or(0);
        let kernel_ack = self.machine.now();
        let log_ix = self.irq_log.len();
        self.irq_log.push(IrqResponse {
            line,
            raised,
            kernel_ack,
            delivered: None,
        });
        self.blk0(Block::IrqAck);
        if self.smp_active() && (line.0 == IPI_RESCHED_LINE || line.0 == IPI_SHOOTDOWN_LINE) {
            self.handle_ipi(line);
            return;
        }
        if let Some(b) = binding {
            // seL4's IRQ protocol: the line stays masked until the driver
            // acknowledges with IrqAck, preventing interrupt storms from
            // re-entering before the handler has run.
            self.machine.irq.mask(line);
            let w = self.obj_addr(b.ntfn, 0);
            let wt = self.obj_addr(b.ntfn, 4);
            self.blk(Block::IrqSignal, &[w, wt, w, wt]);
            match ntfn::signal(&mut self.objs, b.ntfn, b.badge) {
                ntfn::SignalOutcome::Wake { tcb, word } => {
                    self.objs.tcb_mut(tcb).msg_info.label = word;
                    self.pending_delivery.insert(tcb, log_ix);
                    self.wake_thread(tcb, false);
                    // An interrupt wake always reconsiders scheduling so a
                    // higher-priority driver preempts the current thread.
                    if self.sched_action == SchedAction::ResumeCurrent {
                        self.sched_action = SchedAction::ChooseNew;
                    }
                }
                ntfn::SignalOutcome::Accumulated => {}
            }
        } else if line.0 == TIMER_LINE {
            // Timer tick: the current thread's timeslice ends. It is
            // re-entered into the run queue (at the tail of its priority)
            // by the scheduler — the §3.1 "re-established at preemption
            // time" path — and `chooseThread` runs, giving round-robin
            // among equal priorities.
            if self.sched_action == SchedAction::ResumeCurrent {
                self.sched_action = SchedAction::ChooseNew;
            }
        }
    }

    /// Full interrupt entry: the path Table 1 and Table 2 bound. Called by
    /// the System harness when an IRQ arrives while userspace runs.
    pub fn handle_interrupt(&mut self) {
        self.lock_enter();
        self.stats.interrupt_entries += 1;
        self.blk0(Block::IrqEntry);
        self.interrupt_core();
        self.exit_kernel();
        self.lock_exit();
    }

    // --- Kernel exit ----------------------------------------------------

    /// Schedule, final interrupt check, restore, return to user (§2.1:
    /// interrupts are "handled when encountering a preemption point or
    /// upon returning to the user").
    pub(crate) fn exit_kernel(&mut self) {
        self.schedule();
        self.blk0(Block::KExitCheck);
        // Service anything that became pending while we were in the
        // kernel; each service can wake threads, so re-schedule. Bounded
        // by the number of interrupt lines.
        let mut guard = 0;
        while self.machine.irq.has_pending() && guard < 64 {
            self.interrupt_core();
            self.schedule();
            self.blk0(Block::KExitCheck);
            guard += 1;
        }
        let ctx: Vec<Addr> = (0..6)
            .map(|i| self.tcb_addr(self.cur, crate::tcb::OFF_CONTEXT + 4 * i))
            .collect();
        self.blk(Block::ExitRestore, &ctx);
    }

    // --- Fault entries ----------------------------------------------------

    /// Page-fault entry: builds a fault message and sends it to the
    /// faulting thread's fault handler (decoded in *its* cspace — one
    /// 32-level decode in the worst case, §6.1).
    pub fn handle_page_fault(&mut self, fault_addr: Addr) {
        self.lock_enter();
        self.stats.fault_entries += 1;
        self.blk0(Block::PfEntry);
        self.fault_common(fault_addr, 16);
        self.exit_kernel();
        self.lock_exit();
    }

    /// Undefined-instruction entry.
    pub fn handle_undefined(&mut self) {
        self.lock_enter();
        self.stats.fault_entries += 1;
        self.blk0(Block::UndefEntry);
        self.fault_common(0, 14);
        self.exit_kernel();
        self.lock_exit();
    }

    /// Common fault handling: decode handler cap, build message, send.
    fn fault_common(&mut self, info: u32, msg_words: u32) {
        let cur = self.cur;
        let a = self.tcb_addr(cur, crate::tcb::OFF_CONTEXT);
        let b = self.tcb_addr(cur, crate::tcb::OFF_MSGINFO);
        self.blk(Block::FaultSetup, &[a, b]);
        for i in 0..msg_words {
            let m = crate::tcb::Tcb::msg_addr(&self.objs, cur, i);
            self.blk(Block::FaultMsgWord, &[m]);
        }
        let _ = info;
        let handler_cptr = self.objs.tcb(cur).fault_handler;
        let root = self.objs.tcb(cur).cspace_root.clone();
        match self.resolve_charged(&root, handler_cptr, crate::CSPACE_DEPTH_BITS) {
            Ok(slot) => {
                let cap = crate::cap::read_slot(&self.objs, slot).cap.clone();
                if let CapType::Endpoint { obj, badge, rights } = cap {
                    if rights.write {
                        // The faulting thread performs, in effect, a Call on
                        // its handler endpoint.
                        self.objs.tcb_mut(cur).msg_info.length = msg_words;
                        let _ = self.ipc_send(cur, obj, badge, false, true, true);
                    }
                } else {
                    // No valid handler: suspend the thread.
                    self.objs.tcb_mut(cur).state = ThreadState::Inactive;
                    self.sched_action = SchedAction::ChooseNew;
                }
            }
            Err(_) => {
                self.objs.tcb_mut(cur).state = ThreadState::Inactive;
                self.sched_action = SchedAction::ChooseNew;
            }
        }
    }

    // --- Capability decode with charging ------------------------------------

    /// Resolves a capability address, charging one [`Block::ResolveLevel`]
    /// per level — the Fig. 7 cost structure.
    pub(crate) fn resolve_charged(
        &mut self,
        root: &CapType,
        cptr: u32,
        depth: u32,
    ) -> Result<SlotRef, crate::cnode::DecodeError> {
        let r1 = match root {
            CapType::CNode { obj, .. } if self.objs.is_live(*obj) => self.obj_addr(*obj, 0),
            _ => kprog::KERNEL_GLOBALS_BASE,
        };
        self.machine.trace_phase("decode");
        self.blk(Block::ResolveEntry, &[r1, r1 + 4]);
        // Walk the levels, collecting the per-level charge addresses first
        // (the store is borrowed immutably during the walk).
        let mut level_addrs: Vec<[Addr; 3]> = Vec::new();
        let result = crate::cnode::resolve_slot(&self.objs, root, cptr, depth, |step| {
            let node_base = self.objs.get(step.node).base;
            let slot_addr = step.slot.addr(&self.objs);
            level_addrs.push([node_base, slot_addr, slot_addr + 8]);
        });
        for a in &level_addrs {
            self.blk(Block::ResolveLevel, &[a[0], a[1], a[2]]);
        }
        self.blk0(Block::ResolveFinish);
        result
    }

    /// Reads the cap at an already-resolved slot (no further charging; the
    /// final ResolveLevel already touched the slot words).
    pub(crate) fn cap_at(&self, slot: SlotRef) -> CapType {
        crate::cap::read_slot(&self.objs, slot).cap.clone()
    }

    /// Overrides the pending scheduling decision (used by syscall paths
    /// that must force a full `chooseThread`).
    pub(crate) fn set_sched_action(&mut self, a: SchedAction) {
        self.sched_action = a;
    }

    /// The pending scheduling decision (tests).
    pub fn sched_action(&self) -> SchedAction {
        self.sched_action
    }

    /// Fastpath commit: installs `t` as current without running the
    /// scheduler (the fastpath blocks already charged the switch).
    pub(crate) fn install_current_fast(&mut self, t: ObjId) {
        self.cur = t;
        self.sched_action = SchedAction::ResumeCurrent;
        if let Some(ix) = self.pending_delivery.remove(&t) {
            let now = self.machine.now();
            self.irq_log[ix].delivered = Some(now);
        }
    }

    /// Test/bench helper: forcibly set the current thread with no charges.
    pub fn force_current_for_test(&mut self, t: ObjId) {
        self.cur = t;
        self.sched_action = SchedAction::ResumeCurrent;
    }

    // --- SMP (DESIGN.md §14) -----------------------------------------------

    /// Turns this kernel into an `n`-core SMP kernel. Core 0 inherits
    /// the boot state (everything built so far keeps running there);
    /// cores `1..n` boot cold, idling on the shared idle thread with
    /// empty run queues. `enable_smp(1)` is behaviourally identical to
    /// not calling this at all — every SMP charge below is gated on
    /// `n_cores > 1`, mirroring seL4 compiling the lock and IPIs out of
    /// uniprocessor builds.
    ///
    /// # Panics
    ///
    /// If called twice, or with `n` outside `1..=8`.
    pub fn enable_smp(&mut self, n: u8) {
        assert!((1..=8).contains(&n), "supported core counts: 1..=8");
        assert!(self.smp.is_none(), "enable_smp called twice");
        let cfg = self.machine.config();
        let idle = self.idle;
        self.smp = Some(Box::new(SmpState::new(n, idle, || {
            rt_hw::smp::CoreCtx::new(cfg)
        })));
    }

    /// Unmasks `line` on the interrupt-controller interface of the core
    /// it is routed to. Device lines are distributor resources delivered
    /// to exactly one core, but a driver may acknowledge from any core
    /// (cross-core wakes migrate drivers): the unmask must reach the
    /// routed core's controller, not the acker's. Single-core kernels —
    /// and local acks — unmask the active controller, bit-identically to
    /// the pre-SMP path.
    pub(crate) fn unmask_routed(&mut self, line: IrqLine) {
        let rc = self.irq_route(line);
        if rc == self.cur_core() {
            self.machine.irq.unmask(line);
        } else {
            let smp = self.smp.as_deref_mut().expect("remote route implies SMP");
            smp.slots[rc as usize].ctx.irq.unmask(line);
        }
    }

    /// Number of cores (1 for a non-SMP kernel).
    pub fn n_cores(&self) -> u8 {
        self.smp.as_ref().map_or(1, |s| s.n_cores)
    }

    /// The core whose state is resident in the active fields.
    pub fn cur_core(&self) -> u8 {
        self.smp.as_ref().map_or(0, |s| s.cur_core)
    }

    /// Whether any SMP path is live (`n_cores > 1`).
    pub fn smp_active(&self) -> bool {
        self.n_cores() > 1
    }

    /// The SMP extension state, if enabled.
    pub fn smp_state(&self) -> Option<&SmpState> {
        self.smp.as_deref()
    }

    /// Mutable SMP state (test/bug-seeding hook).
    pub fn smp_state_mut(&mut self) -> Option<&mut SmpState> {
        self.smp.as_deref_mut()
    }

    /// Seeded-bug hook: drop reschedule IPIs instead of raising them
    /// (the lost-wakeup bug the explorer's SMP invariant catches).
    pub fn set_drop_resched_ipis(&mut self, on: bool) {
        if let Some(smp) = self.smp.as_deref_mut() {
            smp.drop_resched_ipis = on;
        }
    }

    /// Sets the big-lock hold-overlap cap (see [`crate::smp::BigLock`]).
    pub fn set_lock_hold_cap(&mut self, cap: Cycles) {
        if let Some(smp) = self.smp.as_deref_mut() {
            smp.lock.hold_cap = cap;
        }
    }

    /// Lock-wait cycles charged to core `c` so far.
    pub fn lock_wait_cycles(&self, c: u8) -> Cycles {
        self.smp
            .as_ref()
            .map_or(0, |s| s.lock.wait_cycles[c as usize])
    }

    /// Current thread of core `c`.
    pub fn core_current(&self, c: u8) -> ObjId {
        if c == self.cur_core() {
            self.cur
        } else {
            self.smp.as_ref().expect("no such core").slots[c as usize].cur
        }
    }

    /// Run queues of core `c`.
    pub fn core_queues(&self, c: u8) -> &RunQueues {
        if c == self.cur_core() {
            &self.queues
        } else {
            &self.smp.as_ref().expect("no such core").slots[c as usize].queues
        }
    }

    /// Pending scheduling decision of core `c`.
    pub fn core_sched_action(&self, c: u8) -> SchedAction {
        if c == self.cur_core() {
            self.sched_action
        } else {
            self.smp.as_ref().expect("no such core").slots[c as usize].sched_action
        }
    }

    /// Interrupt-controller interface of core `c`.
    pub fn core_irq(&self, c: u8) -> &rt_hw::IrqController {
        if c == self.cur_core() {
            &self.machine.irq
        } else {
            &self.smp.as_ref().expect("no such core").slots[c as usize]
                .ctx
                .irq
        }
    }

    /// Local cycle counter of core `c`.
    pub fn core_now(&self, c: u8) -> Cycles {
        if c == self.cur_core() {
            self.machine.now()
        } else {
            self.smp.as_ref().expect("no such core").slots[c as usize]
                .ctx
                .pmu
                .cycles
        }
    }

    /// Routes device line `line` to core `core`'s interrupt interface.
    /// Advisory for the *driver* layer (explorer, load engine): the
    /// kernel never raises device lines itself; drivers consult
    /// [`Self::irq_route`] to pick the controller to raise on.
    pub fn route_irq(&mut self, line: IrqLine, core: u8) {
        let smp = self
            .smp
            .as_deref_mut()
            .expect("route_irq without enable_smp");
        assert!(core < smp.n_cores, "core {core} out of range");
        smp.routing.set(line, core);
    }

    /// The core `line` is routed to (0 for a non-SMP kernel).
    pub fn irq_route(&self, line: IrqLine) -> u8 {
        self.smp.as_ref().map_or(0, |s| s.routing.core_of(line))
    }

    /// Makes core `c` the active core: parks the current core's
    /// scheduler + hardware state in its slot and swaps in `c`'s. O(1);
    /// a no-op when `c` is already active. `N = 1` configurations never
    /// take the swap path, preserving bit-identity.
    pub fn switch_core(&mut self, c: u8) {
        let cur = self.cur_core();
        if c == cur {
            return;
        }
        let smp = self
            .smp
            .as_deref_mut()
            .expect("switch_core without enable_smp");
        assert!(c < smp.n_cores, "core {c} out of range");
        {
            let slot = &mut smp.slots[cur as usize];
            self.machine.swap_core(&mut slot.ctx);
            std::mem::swap(&mut self.queues, &mut slot.queues);
            slot.cur = self.cur;
            slot.sched_action = self.sched_action;
        }
        {
            let slot = &mut smp.slots[c as usize];
            self.machine.swap_core(&mut slot.ctx);
            std::mem::swap(&mut self.queues, &mut slot.queues);
            self.cur = slot.cur;
            self.sched_action = slot.sched_action;
        }
        smp.cur_core = c;
    }

    /// Changes `t`'s affinity (uncharged management operation, like the
    /// `boot_*` helpers). A *queued* thread migrates between run queues
    /// immediately and the destination core is kicked with a reschedule
    /// IPI; a running thread keeps its core until next displaced, at
    /// which point the routed enqueue migrates it.
    pub fn set_affinity(&mut self, t: ObjId, core: u8) {
        assert!(core < self.n_cores(), "core {core} out of range");
        let old = self.objs.tcb(t).affinity;
        if old == core {
            return;
        }
        if self.objs.tcb(t).in_runqueue {
            if old == self.cur_core() {
                self.queues.dequeue(&mut self.objs, t);
            } else {
                let smp = self.smp.as_deref_mut().expect("no such core");
                smp.slots[old as usize].queues.dequeue(&mut self.objs, t);
            }
            self.objs.tcb_mut(t).affinity = core;
            if core == self.cur_core() {
                self.queues.enqueue(&mut self.objs, t);
            } else {
                {
                    let smp = self.smp.as_deref_mut().expect("no such core");
                    smp.slots[core as usize].queues.enqueue(&mut self.objs, t);
                }
                self.send_resched_ipi(core);
            }
        } else {
            self.objs.tcb_mut(t).affinity = core;
        }
    }

    /// Raises the reschedule IPI on `target`'s interrupt interface,
    /// stamped with the target's local clock. Dropped silently when the
    /// seeded lost-IPI bug is armed.
    fn send_resched_ipi(&mut self, target: u8) {
        let Some(smp) = self.smp.as_deref_mut() else {
            return;
        };
        if smp.n_cores <= 1 {
            return;
        }
        smp.resched_sent[target as usize] += 1;
        if smp.drop_resched_ipis {
            return;
        }
        debug_assert_ne!(target, smp.cur_core, "IPI to self");
        let slot = &mut smp.slots[target as usize];
        let at = slot.ctx.pmu.cycles;
        slot.ctx.irq.raise(IrqLine(IPI_RESCHED_LINE), at);
    }

    /// Enqueues `t` on its (remote) affinity core and kicks that core:
    /// the charged cross-core wake path. Charges the bitmap write and
    /// the distributor register write on the *current* core.
    fn enqueue_remote(&mut self, t: ObjId) {
        let aff = self.objs.tcb(t).affinity;
        {
            let smp = self.smp.as_deref_mut().expect("remote enqueue without SMP");
            smp.slots[aff as usize].queues.enqueue(&mut self.objs, t);
        }
        if self.config.sched == SchedKind::BennoBitmap {
            self.blk0(Block::BitmapSet);
        }
        // Distributor write raising the IPI: one uncached device access.
        self.machine.advance(kprog::DEVICE_ACCESS_CYCLES);
        self.send_resched_ipi(aff);
    }

    /// Requeues a displaced-but-runnable current thread, routing by
    /// affinity (bit-identical to the historical inline sequence when
    /// SMP is off or the thread stays local).
    fn requeue_current(&mut self) {
        let cur_runnable = self.objs.tcb(self.cur).state.is_runnable();
        if cur_runnable && !self.objs.tcb(self.cur).in_runqueue && self.cur != self.idle {
            self.charge_enqueue(self.cur);
            if self.smp_active() && self.objs.tcb(self.cur).affinity != self.cur_core() {
                self.enqueue_remote(self.cur);
            } else {
                self.queues.enqueue(&mut self.objs, self.cur);
                if self.config.sched == SchedKind::BennoBitmap {
                    self.blk0(Block::BitmapSet);
                }
            }
        }
    }

    /// Services an IPI line on the active core: decode phase marker,
    /// the kind-specific work, then the (auto-)EOI marker. The shared
    /// interrupt path has already acked the line — that ack *is* the
    /// EOI; IPI lines are never masked (no driver protocol).
    fn handle_ipi(&mut self, line: IrqLine) {
        self.machine.trace_phase("ipi-decode");
        if line.0 == IPI_SHOOTDOWN_LINE {
            // Remote TLB invalidate: same block as the local flush.
            self.blk0(Block::TlbFlush);
            let smp = self.smp.as_deref_mut().expect("IPI without SMP");
            smp.shootdown.pending[smp.cur_core as usize] = false;
            smp.shootdown.completed += 1;
        } else if self.sched_action == SchedAction::ResumeCurrent {
            // Reschedule kick: force a full chooseThread on this core.
            self.sched_action = SchedAction::ChooseNew;
        }
        self.machine.trace_phase("ipi-eoi");
        if let Some(smp) = self.smp.as_deref_mut() {
            smp.ipi_eois += 1;
        }
    }

    /// Broadcasts a TLB shootdown to every other core (called from the
    /// local TLB-flush path). Asynchronous completion: each target
    /// invalidates its TLB when it services the IPI; the initiator does
    /// not spin (stale remote translations are benign in this model —
    /// the window closes at the target's next kernel entry, and the
    /// §2.1 latency story is what the model is for).
    pub(crate) fn tlb_shootdown_broadcast(&mut self) {
        if !self.smp_active() {
            return;
        }
        let n = self.n_cores();
        let cur = self.cur_core();
        for c in 0..n {
            if c == cur {
                continue;
            }
            self.machine.trace_phase("shootdown-send");
            self.machine.advance(kprog::DEVICE_ACCESS_CYCLES);
            let smp = self.smp.as_deref_mut().expect("smp_active");
            smp.shootdown.pending[c as usize] = true;
            smp.shootdown.initiated += 1;
            let slot = &mut smp.slots[c as usize];
            let at = slot.ctx.pmu.cycles;
            slot.ctx.irq.raise(IrqLine(IPI_SHOOTDOWN_LINE), at);
        }
    }

    /// Acquires the big kernel lock on kernel entry: charges the
    /// modeled wait for overlap with other cores' recorded holds and
    /// records this hold's start. Compiled out (`return`) below 2
    /// cores.
    pub(crate) fn lock_enter(&mut self) {
        let Some(smp) = self.smp.as_deref_mut() else {
            return;
        };
        if smp.n_cores <= 1 {
            return;
        }
        let c = smp.cur_core;
        let now = self.machine.now();
        let wait = smp.lock.wait_for_entry(c, now);
        if wait > 0 {
            self.machine.trace_phase("lock-wait");
            self.machine.advance(wait);
            smp.lock.wait_cycles[c as usize] += wait;
        }
        let start = self.machine.now();
        smp.lock.enter(c, start);
    }

    /// Releases the big kernel lock on kernel exit, recording the hold
    /// interval.
    pub(crate) fn lock_exit(&mut self) {
        let Some(smp) = self.smp.as_deref_mut() else {
            return;
        };
        if smp.n_cores <= 1 {
            return;
        }
        let c = smp.cur_core;
        let now = self.machine.now();
        smp.lock.exit(c, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::RunToCompletion;
    use crate::invariants;
    use crate::testutil::boot_two_threads_one_ep;

    fn observables(k: &Kernel) -> String {
        format!(
            "{:?} {:?} {:?} {:?} {:?}",
            k.machine,
            k.stats,
            k.irq_log,
            k.current(),
            k.sched_action()
        )
    }

    /// Snapshot/restore round-trips to a bit-identical kernel: identical
    /// at rest, and identical after running both forward under the same
    /// inputs (interrupt arrival included).
    #[test]
    fn snapshot_restore_round_trips() {
        let (mut k, _client, _server, _ep) = boot_two_threads_one_ep();
        k.machine.advance(100);
        k.machine
            .irq
            .schedule(k.machine.now() + 50, rt_hw::IrqLine(3));
        let snap = k.snapshot();
        let mut f = snap.restore();
        assert_eq!(observables(&k), observables(&f), "restore diverged at rest");
        for kernel in [&mut k, &mut f] {
            kernel.machine.advance(60);
            kernel.handle_interrupt();
        }
        assert_eq!(
            observables(&k),
            observables(&f),
            "restore diverged after identical inputs"
        );
        assert!(invariants::check_all(&f).is_empty());
        // One capture seeds any number of forks.
        let g = snap.restore();
        assert!(invariants::check_all(&g).is_empty());
    }

    /// `restore_into` — the buffer-reusing fast path — is bit-identical
    /// to `restore()`, whatever state the target kernel is in: every
    /// field is overwritten, including dropping an installed decision
    /// source back to the uninstrumented `None`.
    #[test]
    fn restore_into_matches_restore() {
        let (mut k, _client, _server, _ep) = boot_two_threads_one_ep();
        k.machine.advance(100);
        k.machine
            .irq
            .schedule(k.machine.now() + 50, rt_hw::IrqLine(3));
        let snap = k.snapshot();
        let fresh = snap.restore();
        // A deliberately divergent target: run it forward, take the
        // interrupt, and install a source.
        let mut target = boot_two_threads_one_ep().0;
        target.machine.advance(500);
        target.handle_interrupt();
        target.set_decision_source(Box::new(RunToCompletion));
        snap.restore_into(&mut target);
        assert!(target.decisions.is_none(), "source survived restore_into");
        assert_eq!(
            observables(&fresh),
            observables(&target),
            "restore_into diverged from restore at rest"
        );
        assert_eq!(format!("{:?}", fresh.objs), format!("{:?}", target.objs));
        let mut fresh = fresh;
        for kernel in [&mut fresh, &mut target] {
            kernel.machine.advance(60);
            kernel.handle_interrupt();
        }
        assert_eq!(
            observables(&fresh),
            observables(&target),
            "restore_into diverged after identical inputs"
        );
    }

    /// Snapshotting an instrumented kernel is a caller bug: the boxed
    /// source cannot be cloned, and silently dropping it would break the
    /// `None` == uninstrumented bit-identity contract.
    #[test]
    #[should_panic(expected = "detach the decision source")]
    fn snapshot_with_source_installed_panics() {
        let (mut k, _, _, _) = boot_two_threads_one_ep();
        k.set_decision_source(Box::new(RunToCompletion));
        let _ = k.snapshot();
    }
}
