//! Thread control blocks.
//!
//! TCBs are 512-byte kernel objects holding thread state, priority, the
//! thread's capability-space and address-space roots, its message
//! registers, and the intrusive links used by the scheduler's run queues
//! and the endpoints' wait queues. Keeping queue links *inside* the TCB
//! means queue operations are O(1) — the property §3.3 relies on ("they can
//! manipulate the list in constant time").

use rt_hw::Addr;

use crate::cap::{Badge, CapType};
use crate::obj::{ObjId, ObjStore};
use crate::syscall::Syscall;

/// Message metadata transferred by IPC (a compressed `msgInfo` word).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsgInfo {
    /// Message length in words (`0..=`[`crate::MAX_MSG_WORDS`]).
    pub length: u32,
    /// Number of capabilities to transfer (`0..=`[`crate::MAX_XFER_CAPS`]).
    pub extra_caps: u32,
    /// Uninterpreted label.
    pub label: u32,
}

impl MsgInfo {
    /// An empty message.
    pub const EMPTY: MsgInfo = MsgInfo {
        length: 0,
        extra_caps: 0,
        label: 0,
    };
}

/// Thread scheduling / blocking state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Not schedulable (never started, or suspended).
    Inactive,
    /// Will re-execute its current system call when next scheduled — the
    /// restartable-system-call mechanism of §2.1: "the system is left in a
    /// state where simply re-executing the original system call will
    /// continue the operation".
    Restart,
    /// Runnable (or currently running).
    Running,
    /// Queued on an endpoint's send queue.
    BlockedOnSend {
        /// The endpoint.
        ep: ObjId,
        /// Badge carried by the send.
        badge: Badge,
        /// Whether the send may grant caps.
        can_grant: bool,
        /// Whether this is the send phase of a Call (expects a reply).
        is_call: bool,
    },
    /// Queued on an endpoint's receive queue.
    BlockedOnRecv {
        /// The endpoint.
        ep: ObjId,
    },
    /// Waiting on a notification word.
    BlockedOnNotification {
        /// The notification object.
        ntfn: ObjId,
    },
    /// Sent a Call and is waiting for the reply cap to be invoked.
    BlockedOnReply,
    /// The idle thread's permanent state.
    Idle,
}

impl ThreadState {
    /// Whether a thread in this state may be chosen by the scheduler.
    pub fn is_runnable(&self) -> bool {
        matches!(self, ThreadState::Running | ThreadState::Restart)
    }

    /// Whether the thread is queued on the endpoint identified by `ep`.
    pub fn blocked_on_ep(&self, ep: ObjId) -> bool {
        matches!(
            self,
            ThreadState::BlockedOnSend { ep: e, .. } | ThreadState::BlockedOnRecv { ep: e }
            if *e == ep
        )
    }
}

/// A thread control block.
#[derive(Clone, Debug)]
pub struct Tcb {
    /// Debug name.
    pub name: String,
    /// Fixed priority, 0 (lowest) to 255 (highest).
    pub prio: u8,
    /// Scheduling / blocking state.
    pub state: ThreadState,
    /// Root of the thread's capability space (a CNode cap).
    pub cspace_root: CapType,
    /// The thread's address space (a page-directory cap).
    pub vspace: CapType,
    /// Capability pointer to the thread's fault handler endpoint, decoded
    /// in this thread's cspace when the thread faults.
    pub fault_handler: u32,
    /// Message registers (model of registers + IPC buffer).
    pub msg: Vec<u32>,
    /// Message metadata for the in-flight IPC.
    pub msg_info: MsgInfo,
    /// Capability pointers of caps to transfer with the next send.
    pub xfer_caps: Vec<u32>,
    /// Where received capabilities land: `(croot_cptr, node_cptr)`, both
    /// decoded in this thread's cspace when a cap arrives — two more of
    /// the worst case's eleven decodes (§6.1).
    pub recv_slot_spec: Option<(u32, u32)>,
    /// Badge delivered by the last receive.
    pub recv_badge: Badge,
    /// Run-queue links (intrusive doubly-linked list).
    pub sched_next: Option<ObjId>,
    /// Run-queue links.
    pub sched_prev: Option<ObjId>,
    /// Whether the thread is currently linked into a run queue.
    pub in_runqueue: bool,
    /// Endpoint/notification wait-queue links.
    pub ep_next: Option<ObjId>,
    /// Endpoint/notification wait-queue links.
    pub ep_prev: Option<ObjId>,
    /// The endpoint or notification whose wait queue this thread is linked
    /// into, if any — makes double-queueing detectable locally.
    pub queued_on: Option<ObjId>,
    /// Thread blocked waiting for *this* thread's reply (the caller of a
    /// `Call` this thread received).
    pub caller: Option<ObjId>,
    /// System call being executed or restarted (§2.1). `Some` while the
    /// thread is inside (or preempted inside) a kernel operation.
    pub current_syscall: Option<Syscall>,
    /// Cycle at which the thread last started waiting (for response-time
    /// accounting in experiments).
    pub wait_since: u64,
    /// SMP affinity: the core this thread runs (and queues) on. Always 0
    /// on a single-core kernel; scheduling metadata only — no modelled
    /// TCB field address, so single-core timing is untouched (DESIGN.md
    /// §14).
    pub affinity: u8,
}

/// TCB object size in bits (512 bytes).
pub const TCB_SIZE_BITS: u8 = 9;

// Field offsets (bytes from TCB base) used for data-access timing charges.
// They mirror a plausible C layout; what matters is that distinct fields
// fall on distinct, stable addresses so cache behaviour is realistic.
/// Offset of the thread state word.
pub const OFF_STATE: u32 = 0x00;
/// Offset of the priority byte.
pub const OFF_PRIO: u32 = 0x04;
/// Offset of the run-queue next link.
pub const OFF_SCHED_NEXT: u32 = 0x08;
/// Offset of the run-queue prev link.
pub const OFF_SCHED_PREV: u32 = 0x0c;
/// Offset of the endpoint-queue next link.
pub const OFF_EP_NEXT: u32 = 0x10;
/// Offset of the endpoint-queue prev link.
pub const OFF_EP_PREV: u32 = 0x14;
/// Offset of the IPC badge word.
pub const OFF_BADGE: u32 = 0x18;
/// Offset of the message-info word.
pub const OFF_MSGINFO: u32 = 0x1c;
/// Offset of the saved context (registers).
pub const OFF_CONTEXT: u32 = 0x20;
/// Offset of the message registers / IPC buffer within the TCB.
pub const OFF_MSG: u32 = 0x80;

impl Tcb {
    /// Creates an inactive thread.
    pub fn new(name: &str, prio: u8) -> Tcb {
        Tcb {
            name: name.to_owned(),
            prio,
            state: ThreadState::Inactive,
            cspace_root: CapType::Null,
            vspace: CapType::Null,
            fault_handler: 0,
            msg: Vec::new(),
            msg_info: MsgInfo::EMPTY,
            xfer_caps: Vec::new(),
            recv_slot_spec: None,
            recv_badge: Badge::NONE,
            sched_next: None,
            sched_prev: None,
            in_runqueue: false,
            ep_next: None,
            ep_prev: None,
            queued_on: None,
            caller: None,
            current_syscall: None,
            wait_since: 0,
            affinity: 0,
        }
    }

    /// Address of a field for timing charges.
    pub fn field_addr(store: &ObjStore, tcb: ObjId, off: u32) -> Addr {
        store.get(tcb).base + off
    }

    /// Address of message register `i`.
    pub fn msg_addr(store: &ObjStore, tcb: ObjId, i: u32) -> Addr {
        store.get(tcb).base + OFF_MSG + 4 * i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::ObjKind;

    #[test]
    fn runnability() {
        assert!(ThreadState::Running.is_runnable());
        assert!(ThreadState::Restart.is_runnable());
        assert!(!ThreadState::Inactive.is_runnable());
        assert!(!ThreadState::BlockedOnReply.is_runnable());
        assert!(!ThreadState::Idle.is_runnable());
    }

    #[test]
    fn blocked_on_ep_matches_only_that_ep() {
        let st = ThreadState::BlockedOnSend {
            ep: ObjId(7),
            badge: Badge(1),
            can_grant: false,
            is_call: false,
        };
        assert!(st.blocked_on_ep(ObjId(7)));
        assert!(!st.blocked_on_ep(ObjId(8)));
        assert!(ThreadState::BlockedOnRecv { ep: ObjId(3) }.blocked_on_ep(ObjId(3)));
        assert!(!ThreadState::Running.blocked_on_ep(ObjId(3)));
    }

    #[test]
    fn field_addresses_stable() {
        let mut s = ObjStore::new();
        let id = s.insert(0x8000_0200, TCB_SIZE_BITS, ObjKind::Tcb(Tcb::new("t", 10)));
        assert_eq!(Tcb::field_addr(&s, id, OFF_STATE), 0x8000_0200);
        assert_eq!(Tcb::field_addr(&s, id, OFF_PRIO), 0x8000_0204);
        assert_eq!(Tcb::msg_addr(&s, id, 2), 0x8000_0200 + 0x80 + 8);
    }
}
