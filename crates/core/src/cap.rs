//! Capabilities and the capability derivation tree (CDT).
//!
//! Capabilities are the basic unit of object management and access control
//! (§3.6): 16-byte slots holding a typed reference to a kernel object plus
//! object-specific metadata (badge, rights, guard, mapping information). A
//! typical system has tens or hundreds of thousands of caps, held in CNode
//! slots and linked into a derivation tree that records how authority was
//! minted, copied and delegated — deletion and revocation walk this tree.
//!
//! The paper's Fig. 7 worst case — a capability space requiring a separate
//! lookup for each of the 32 address bits — is constructed from these
//! pieces by `rt-bench`.

use rt_hw::Addr;

use crate::obj::{ObjId, ObjStore};
use crate::CAP_SLOT_BYTES;

/// Access rights carried by endpoint/notification/frame caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rights {
    /// Permission to receive / read.
    pub read: bool,
    /// Permission to send / write.
    pub write: bool,
    /// Permission to transfer capabilities over IPC (§6.1: the worst-case
    /// IPC grants access rights to objects).
    pub grant: bool,
}

impl Rights {
    /// All rights.
    pub const ALL: Rights = Rights {
        read: true,
        write: true,
        grant: true,
    };

    /// Send-only (a typical client's endpoint cap).
    pub const SEND: Rights = Rights {
        read: false,
        write: true,
        grant: false,
    };

    /// Receive-only (a typical server's endpoint cap).
    pub const RECV: Rights = Rights {
        read: true,
        write: false,
        grant: false,
    };

    /// Intersection with a requested mask (rights can only shrink when a
    /// cap is derived).
    pub fn masked(self, mask: Rights) -> Rights {
        Rights {
            read: self.read && mask.read,
            write: self.write && mask.write,
            grant: self.grant && mask.grant,
        }
    }
}

/// An unforgeable badge minted onto an endpoint capability (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Badge(pub u32);

impl Badge {
    /// The unbadged sentinel.
    pub const NONE: Badge = Badge(0);
}

/// Which address space a frame/page-table is mapped into. The two VM
/// designs of §3.6 differ exactly here: the legacy design indirects through
/// an ASID, the shadow design stores the page directory directly (made safe
/// by eager back-pointer maintenance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpaceRef {
    /// Address-space identifier resolved through the ASID table (Fig. 4).
    Asid(u32),
    /// Direct page-directory reference (Fig. 5).
    Pd(ObjId),
}

/// Frame-cap mapping metadata (§3.6: a mapped frame cap records the address
/// space and virtual address of its mapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// The containing address space.
    pub space: SpaceRef,
    /// Virtual address of the mapping.
    pub vaddr: Addr,
}

/// The typed content of a capability slot.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CapType {
    /// Empty slot.
    Null,
    /// Authority over a region of untyped memory.
    Untyped(ObjId),
    /// Endpoint cap with badge and rights.
    Endpoint {
        /// Target endpoint object.
        obj: ObjId,
        /// Badge (0 = unbadged).
        badge: Badge,
        /// Rights mask.
        rights: Rights,
    },
    /// Notification cap with badge and rights.
    Notification {
        /// Target notification object.
        obj: ObjId,
        /// Badge OR-ed into the notification word on signal.
        badge: Badge,
        /// Rights mask.
        rights: Rights,
    },
    /// Thread control block cap.
    Tcb(ObjId),
    /// CNode cap with a guard (the guarded-page-table decode of Fig. 7).
    CNode {
        /// Target CNode object.
        obj: ObjId,
        /// Number of guard bits consumed before the radix.
        guard_bits: u8,
        /// Guard value that must match.
        guard: u32,
    },
    /// Physical memory frame, possibly mapped.
    Frame {
        /// Target frame object.
        obj: ObjId,
        /// Mapping state.
        mapping: Option<Mapping>,
        /// Rights mask.
        rights: Rights,
    },
    /// Second-level page table, possibly installed in a directory.
    PageTable {
        /// Target page-table object.
        obj: ObjId,
        /// Where it is installed.
        mapped: Option<Mapping>,
    },
    /// Top-level page directory (an address space).
    PageDirectory {
        /// Target page-directory object.
        obj: ObjId,
        /// Assigned ASID (legacy design only).
        asid: Option<u32>,
    },
    /// ASID pool (legacy VM design, Fig. 4).
    AsidPool(ObjId),
    /// Authority to create ASID pools (legacy VM design).
    AsidControl,
    /// Authority to create IRQ handler caps.
    IrqControl,
    /// Authority over one interrupt line.
    IrqHandler(u8),
    /// Single-use reply cap generated by `Call` (§6.1).
    Reply(ObjId),
}

impl CapType {
    /// The object this cap refers to, if it is an object cap.
    pub fn object(&self) -> Option<ObjId> {
        match *self {
            CapType::Untyped(o)
            | CapType::Endpoint { obj: o, .. }
            | CapType::Notification { obj: o, .. }
            | CapType::Tcb(o)
            | CapType::CNode { obj: o, .. }
            | CapType::Frame { obj: o, .. }
            | CapType::PageTable { obj: o, .. }
            | CapType::PageDirectory { obj: o, .. }
            | CapType::AsidPool(o)
            | CapType::Reply(o) => Some(o),
            CapType::Null | CapType::AsidControl | CapType::IrqControl | CapType::IrqHandler(_) => {
                None
            }
        }
    }

    /// Returns `true` for the empty slot.
    pub fn is_null(&self) -> bool {
        matches!(self, CapType::Null)
    }
}

/// Address of a capability slot: which CNode, and which index inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotRef {
    /// Containing CNode object.
    pub cnode: ObjId,
    /// Slot index.
    pub index: u32,
}

impl SlotRef {
    /// Creates a slot reference.
    pub fn new(cnode: ObjId, index: u32) -> SlotRef {
        SlotRef { cnode, index }
    }

    /// Physical address of the slot (16 bytes per slot), for timing charges.
    pub fn addr(&self, store: &ObjStore) -> Addr {
        store.get(self.cnode).base + self.index * CAP_SLOT_BYTES
    }
}

/// A capability slot: the cap itself plus its derivation-tree links.
///
/// The derivation tree is kept as explicit parent/children links; the §2.2
/// *well-formed data structures* invariant (checked executably in
/// [`crate::invariants`]) demands that parent and child links agree.
#[derive(Clone, Debug, Hash)]
pub struct CapSlot {
    /// The capability stored here.
    pub cap: CapType,
    /// The slot this cap was derived from, if any.
    pub parent: Option<SlotRef>,
    /// Slots holding caps derived from this one.
    pub children: Vec<SlotRef>,
}

impl CapSlot {
    /// An empty slot.
    pub fn null() -> CapSlot {
        CapSlot {
            cap: CapType::Null,
            parent: None,
            children: Vec::new(),
        }
    }
}

impl Default for CapSlot {
    fn default() -> CapSlot {
        CapSlot::null()
    }
}

/// A full, read-only view of one slot.
pub type Cap = CapType;

// --- CDT operations -------------------------------------------------------
//
// These are pure bookkeeping (no timing); the kernel charges the memory
// accesses of the 16-byte slots around each call.

/// Reads the cap at `slot`.
///
/// # Panics
///
/// Panics if `slot.cnode` is not a live CNode or the index is out of range.
pub fn read_slot(store: &ObjStore, slot: SlotRef) -> &CapSlot {
    store.cnode(slot.cnode).slot(slot.index)
}

/// Writes `cap` into the empty slot `slot`, recording `parent` in the CDT.
///
/// # Panics
///
/// Panics if the destination slot is occupied (a slot must be deleted
/// before reuse — the kernel's decode paths check this before calling).
pub fn insert_cap(store: &mut ObjStore, slot: SlotRef, cap: CapType, parent: Option<SlotRef>) {
    assert!(!cap.is_null(), "inserting Null is not a CDT operation");
    {
        let dst = store.cnode_mut(slot.cnode).slot_mut(slot.index);
        assert!(dst.cap.is_null(), "cap slot {slot:?} already occupied");
        dst.cap = cap;
        dst.parent = parent;
    }
    if let Some(p) = parent {
        store
            .cnode_mut(p.cnode)
            .slot_mut(p.index)
            .children
            .push(slot);
    }
}

/// Removes the cap at `slot` from the CDT, reparenting its children to its
/// parent, and returns the removed cap.
///
/// # Panics
///
/// Panics if the slot is empty.
pub fn delete_cap(store: &mut ObjStore, slot: SlotRef) -> CapType {
    let (cap, parent, children) = {
        let s = store.cnode_mut(slot.cnode).slot_mut(slot.index);
        assert!(!s.cap.is_null(), "deleting an empty slot {slot:?}");
        let cap = std::mem::replace(&mut s.cap, CapType::Null);
        let parent = s.parent.take();
        let children = std::mem::take(&mut s.children);
        (cap, parent, children)
    };
    // Detach from the parent's child list.
    if let Some(p) = parent {
        let kids = &mut store.cnode_mut(p.cnode).slot_mut(p.index).children;
        kids.retain(|&c| c != slot);
        // Reparent grandchildren.
        kids.extend(children.iter().copied());
    }
    for c in &children {
        store.cnode_mut(c.cnode).slot_mut(c.index).parent = parent;
    }
    cap
}

/// Collects the direct children of `slot` (for revocation walks).
pub fn children_of(store: &ObjStore, slot: SlotRef) -> Vec<SlotRef> {
    read_slot(store, slot).children.clone()
}

/// Returns `true` if `slot` holds the final capability to its object — no
/// other slot in the system references the same object. Object destruction
/// is only performed on final-cap deletion.
///
/// Capabilities stored *inside the object itself* (a CNode holding a cap
/// to itself) do not count: they die with the object, so they cannot keep
/// it alive — the role seL4's zombie caps play for cyclic self-reference.
pub fn is_final(store: &ObjStore, slot: SlotRef) -> bool {
    let cap = &read_slot(store, slot).cap;
    let Some(obj) = cap.object() else {
        return false;
    };
    let mut seen = 0u32;
    let mut counted_self = false;
    for (id, o) in store.iter() {
        if id == obj {
            continue; // caps inside the object itself die with it
        }
        if let crate::obj::ObjKind::CNode(cn) = &o.kind {
            for i in 0..cn.num_slots() {
                if cn.slot(i).cap.object() == Some(obj) {
                    seen += 1;
                    if id == slot.cnode && i == slot.index {
                        counted_self = true;
                    }
                    if seen > 1 {
                        return false;
                    }
                }
            }
        }
    }
    // Final only when the queried slot itself is the single counted cap;
    // in particular a self-contained cap is never final while an external
    // cap exists.
    seen == 1 && counted_self
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnode::CNode;
    use crate::obj::ObjKind;

    fn store_with_cnode(slots: u8) -> (ObjStore, ObjId) {
        let mut s = ObjStore::new();
        let cn = CNode::new(slots);
        let size_bits = CNode::size_bits(slots);
        let id = s.insert(0x8000_0000, size_bits, ObjKind::CNode(cn));
        (s, id)
    }

    fn ep(store: &mut ObjStore, at: Addr) -> CapType {
        let id = store.insert(at, 4, ObjKind::Endpoint(crate::ep::Endpoint::new()));
        CapType::Endpoint {
            obj: id,
            badge: Badge::NONE,
            rights: Rights::ALL,
        }
    }

    #[test]
    fn rights_mask_shrinks() {
        let r = Rights::ALL.masked(Rights::SEND);
        assert_eq!(r, Rights::SEND);
        let r2 = Rights::SEND.masked(Rights::RECV);
        assert!(!r2.read && !r2.write && !r2.grant);
    }

    #[test]
    fn insert_read_delete_round_trip() {
        let (mut s, cn) = store_with_cnode(4);
        let cap = ep(&mut s, 0x8100_0000);
        let slot = SlotRef::new(cn, 2);
        insert_cap(&mut s, slot, cap.clone(), None);
        assert_eq!(read_slot(&s, slot).cap, cap);
        let removed = delete_cap(&mut s, slot);
        assert_eq!(removed, cap);
        assert!(read_slot(&s, slot).cap.is_null());
    }

    #[test]
    fn cdt_parent_child_links() {
        let (mut s, cn) = store_with_cnode(4);
        let cap = ep(&mut s, 0x8100_0000);
        let parent = SlotRef::new(cn, 0);
        let child = SlotRef::new(cn, 1);
        insert_cap(&mut s, parent, cap.clone(), None);
        insert_cap(&mut s, child, cap.clone(), Some(parent));
        assert_eq!(read_slot(&s, parent).children, vec![child]);
        assert_eq!(read_slot(&s, child).parent, Some(parent));
    }

    #[test]
    fn delete_reparents_grandchildren() {
        let (mut s, cn) = store_with_cnode(8);
        let cap = ep(&mut s, 0x8100_0000);
        let a = SlotRef::new(cn, 0);
        let b = SlotRef::new(cn, 1);
        let c = SlotRef::new(cn, 2);
        insert_cap(&mut s, a, cap.clone(), None);
        insert_cap(&mut s, b, cap.clone(), Some(a));
        insert_cap(&mut s, c, cap.clone(), Some(b));
        delete_cap(&mut s, b);
        assert_eq!(read_slot(&s, a).children, vec![c]);
        assert_eq!(read_slot(&s, c).parent, Some(a));
    }

    #[test]
    fn finality() {
        let (mut s, cn) = store_with_cnode(4);
        let cap = ep(&mut s, 0x8100_0000);
        let a = SlotRef::new(cn, 0);
        let b = SlotRef::new(cn, 1);
        insert_cap(&mut s, a, cap.clone(), None);
        assert!(is_final(&s, a));
        insert_cap(&mut s, b, cap, Some(a));
        assert!(!is_final(&s, a));
        delete_cap(&mut s, b);
        assert!(is_final(&s, a));
    }

    #[test]
    fn slot_addresses_are_16_bytes_apart() {
        let (s, cn) = store_with_cnode(4);
        let a0 = SlotRef::new(cn, 0).addr(&s);
        let a1 = SlotRef::new(cn, 1).addr(&s);
        assert_eq!(a1 - a0, 16);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_insert_panics() {
        let (mut s, cn) = store_with_cnode(4);
        let cap = ep(&mut s, 0x8100_0000);
        let slot = SlotRef::new(cn, 0);
        insert_cap(&mut s, slot, cap.clone(), None);
        insert_cap(&mut s, slot, cap, None);
    }
}

#[cfg(test)]
mod finality_edge_tests {
    use super::*;
    use crate::cnode::CNode;
    use crate::obj::{ObjKind, ObjStore};

    #[test]
    fn self_cap_is_not_final_while_external_cap_exists() {
        let mut s = ObjStore::new();
        let outer = s.insert(
            0x8000_0000,
            CNode::size_bits(2),
            ObjKind::CNode(CNode::new(2)),
        );
        let inner = s.insert(
            0x8000_0100,
            CNode::size_bits(2),
            ObjKind::CNode(CNode::new(2)),
        );
        let external = SlotRef::new(outer, 0);
        let self_cap = SlotRef::new(inner, 1);
        let cap = CapType::CNode {
            obj: inner,
            guard_bits: 0,
            guard: 0,
        };
        insert_cap(&mut s, external, cap.clone(), None);
        insert_cap(&mut s, self_cap, cap, Some(external));
        // Deleting the self-contained cap must NOT destroy the CNode.
        assert!(!is_final(&s, self_cap));
        // The external cap IS final: the self-cap dies with the object.
        assert!(is_final(&s, external));
    }
}
