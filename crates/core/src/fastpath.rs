//! The IPC fastpath (§6.1).
//!
//! "seL4 already provides fastpaths to improve the performance of common
//! IPC operations by an order of magnitude — fastpaths are highly-optimised
//! code paths designed to execute a specific operation as quickly as
//! possible. The fastpath performance is not affected by our preemption
//! points. In fact, the IPC fastpath is one of the fastest operations the
//! kernel performs (around 200-250 cycles on the ARM1136) and hence there
//! would be no benefit to making it preemptible."
//!
//! Eligibility mirrors seL4's: a `Call` with a short message (≤ 4 words),
//! no capability transfer, a single-level capability decode, a receiver
//! already waiting, and no priority inversion; symmetrically for
//! `ReplyRecv`. Anything else falls back to the slowpath.

use crate::cap::CapType;
use crate::ep::{self, EpState};
use crate::kernel::Kernel;
use crate::kprog::Block;
use crate::obj::ObjId;
use crate::syscall::{Syscall, SyscallResult};
use crate::tcb::{MsgInfo, Tcb, ThreadState, OFF_CONTEXT, OFF_MSG, OFF_STATE};
use crate::CSPACE_DEPTH_BITS;

/// Longest message the fastpath will transfer (register-only, as on ARM).
pub const FASTPATH_MSG_WORDS: u32 = 4;

impl Kernel {
    /// Attempts the fastpath; `None` means "take the slowpath".
    pub(crate) fn try_fastpath(&mut self, sys: &Syscall) -> Option<SyscallResult> {
        match sys {
            Syscall::Call { cptr, len, caps } if caps.is_empty() && *len <= FASTPATH_MSG_WORDS => {
                self.fastpath_call(*cptr, *len)
            }
            Syscall::ReplyRecv { cptr, len, caps }
                if caps.is_empty() && *len <= FASTPATH_MSG_WORDS =>
            {
                self.fastpath_reply_recv(*cptr, *len)
            }
            _ => None,
        }
    }

    /// Checks (without charging) that `cptr` decodes in a single level and
    /// names an endpoint. The real fastpath bakes this into its guard
    /// sequence; a deep cspace bails to the slowpath.
    fn peek_single_level_ep(
        &self,
        cptr: u32,
    ) -> Option<(ObjId, crate::cap::Badge, crate::cap::Rights)> {
        let root = self.objs.tcb(self.current()).cspace_root.clone();
        let mut levels = 0;
        let slot = crate::cnode::resolve_slot(&self.objs, &root, cptr, CSPACE_DEPTH_BITS, |_| {
            levels += 1;
        })
        .ok()?;
        if levels != 1 {
            return None;
        }
        match crate::cap::read_slot(&self.objs, slot).cap {
            CapType::Endpoint { obj, badge, rights } => Some((obj, badge, rights)),
            _ => None,
        }
    }

    fn fastpath_call(&mut self, cptr: u32, len: u32) -> Option<SyscallResult> {
        let cur = self.current();
        let (epobj, badge, rights) = self.peek_single_level_ep(cptr)?;
        if !rights.write {
            return None;
        }
        // A receiver must already be waiting, at a priority that lets it
        // run immediately (the direct-switch condition).
        let e = self.objs.ep(epobj);
        if !e.active || e.state != EpState::Receiving {
            return None;
        }
        let recv = e.head.expect("Receiving implies a waiter");
        if self.objs.tcb(recv).prio < self.objs.tcb(cur).prio {
            return None;
        }
        // Eligible: charge the three fastpath blocks and do the transfer.
        let e0 = self.obj_addr(epobj, 0);
        let c0 = self.tcb_addr(cur, OFF_STATE);
        let r0 = self.tcb_addr(recv, OFF_STATE);
        self.blk(Block::FastpathCheck, &[e0, e0 + 4, c0, c0 + 4, r0, r0 + 4]);
        let xfer: Vec<_> = (0..FASTPATH_MSG_WORDS)
            .map(|i| Tcb::msg_addr(&self.objs, cur, i))
            .chain((0..FASTPATH_MSG_WORDS).map(|i| Tcb::msg_addr(&self.objs, recv, i)))
            .collect();
        self.blk(Block::FastpathXfer, &xfer);
        ep::ep_unlink(&mut self.objs, epobj, recv);
        // Copy the register message.
        for i in 0..len as usize {
            let w = self.objs.tcb(cur).msg.get(i).copied().unwrap_or(0);
            let m = &mut self.objs.tcb_mut(recv).msg;
            if m.len() <= i {
                m.resize(i + 1, 0);
            }
            m[i] = w;
        }
        {
            let info = MsgInfo {
                length: len,
                extra_caps: 0,
                label: 0,
            };
            let t = self.objs.tcb_mut(recv);
            t.msg_info = info;
            t.recv_badge = badge;
            t.state = ThreadState::Running;
            t.caller = Some(cur);
        }
        self.objs.tcb_mut(cur).state = ThreadState::BlockedOnReply;
        let commit: Vec<_> = (0..4)
            .map(|i| self.tcb_addr(cur, OFF_CONTEXT + 4 * i))
            .chain((0..4).map(|i| self.tcb_addr(recv, OFF_CONTEXT + 4 * i)))
            .collect();
        self.blk(Block::FastpathCommit, &commit);
        // Direct switch without touching the run queue (§3.1 / §6.1).
        self.install_current_fast(recv);
        Some(Ok(()))
    }

    fn fastpath_reply_recv(&mut self, cptr: u32, len: u32) -> Option<SyscallResult> {
        let cur = self.current();
        let caller = self.objs.tcb(cur).caller?;
        if self.objs.tcb(caller).state != ThreadState::BlockedOnReply {
            return None;
        }
        let (epobj, _badge, rights) = self.peek_single_level_ep(cptr)?;
        if !rights.read {
            return None;
        }
        // The endpoint must have no queued senders (otherwise the receive
        // phase has real work to do) and the caller must be able to run.
        let e = self.objs.ep(epobj);
        if !e.active || e.state == EpState::Sending {
            return None;
        }
        // The replying server blocks, so the caller runs next iff nothing
        // runnable outranks it (seL4's fastpath checks the ready-queue
        // bitmap the same way).
        let highest_queued = self.queues.bitmap.highest().unwrap_or(0);
        if !self.queues.is_empty() && self.objs.tcb(caller).prio < highest_queued {
            return None;
        }
        let e0 = self.obj_addr(epobj, 0);
        let c0 = self.tcb_addr(cur, OFF_STATE);
        let r0 = self.tcb_addr(caller, OFF_STATE);
        self.blk(Block::FastpathCheck, &[e0, e0 + 4, c0, c0 + 4, r0, r0 + 4]);
        let xfer: Vec<_> = (0..FASTPATH_MSG_WORDS)
            .map(|i| Tcb::msg_addr(&self.objs, cur, i))
            .chain((0..FASTPATH_MSG_WORDS).map(|i| Tcb::msg_addr(&self.objs, caller, i)))
            .collect();
        self.blk(Block::FastpathXfer, &xfer);
        for i in 0..len as usize {
            let w = self.objs.tcb(cur).msg.get(i).copied().unwrap_or(0);
            let m = &mut self.objs.tcb_mut(caller).msg;
            if m.len() <= i {
                m.resize(i + 1, 0);
            }
            m[i] = w;
        }
        {
            let t = self.objs.tcb_mut(caller);
            t.msg_info = MsgInfo {
                length: len,
                extra_caps: 0,
                label: 0,
            };
            t.state = ThreadState::Running;
        }
        self.objs.tcb_mut(cur).caller = None;
        // Server blocks on the endpoint waiting for the next request.
        ep::ep_append(&mut self.objs, epobj, cur, EpState::Receiving);
        self.objs.tcb_mut(cur).state = ThreadState::BlockedOnRecv { ep: epobj };
        let base = self.obj_addr(epobj, 0);
        let commit: Vec<_> = (0..4)
            .map(|i| self.tcb_addr(cur, OFF_MSG + 4 * i))
            .chain((0..3).map(|i| self.tcb_addr(caller, OFF_CONTEXT + 4 * i)))
            .chain(std::iter::once(base + 8))
            .collect();
        self.blk(Block::FastpathCommit, &commit);
        self.install_current_fast(caller);
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boot_two_threads_one_ep, ep_object};

    fn park_server_receiving(k: &mut Kernel, server: ObjId, epobj: ObjId) {
        k.objs.tcb_mut(server).state = ThreadState::BlockedOnRecv { ep: epobj };
        k.objs.tcb_mut(server).caller = None;
        ep::ep_append(&mut k.objs, epobj, server, EpState::Receiving);
    }

    #[test]
    fn fastpath_requires_waiting_receiver() {
        let (mut k, _client, _server, ep_cptr) = boot_two_threads_one_ep();
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 2,
            caps: vec![],
        };
        assert!(k.try_fastpath(&sys).is_none());
    }

    #[test]
    fn long_message_disqualifies_fastpath() {
        let (mut k, _c, _s, ep_cptr) = boot_two_threads_one_ep();
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 50,
            caps: vec![],
        };
        assert!(k.try_fastpath(&sys).is_none());
    }

    #[test]
    fn cap_transfer_disqualifies_fastpath() {
        let (mut k, _c, _s, ep_cptr) = boot_two_threads_one_ep();
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 1,
            caps: vec![1],
        };
        assert!(k.try_fastpath(&sys).is_none());
    }

    #[test]
    fn fastpath_call_switches_and_transfers() {
        let (mut k, client, server, ep_cptr) = boot_two_threads_one_ep();
        let epobj = ep_object(&k, client, ep_cptr);
        park_server_receiving(&mut k, server, epobj);
        k.objs.tcb_mut(client).msg = vec![7, 9];
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 2,
            caps: vec![],
        };
        assert_eq!(k.try_fastpath(&sys), Some(Ok(())));
        assert_eq!(k.current(), server, "direct switch to the receiver");
        assert_eq!(k.objs.tcb(server).msg[..2], [7, 9]);
        assert_eq!(k.objs.tcb(server).caller, Some(client));
        assert_eq!(k.objs.tcb(client).state, ThreadState::BlockedOnReply);
        assert!(
            !k.objs.tcb(server).in_runqueue,
            "§3.1: the woken thread is never enqueued on the fastpath"
        );
    }

    #[test]
    fn fastpath_call_is_a_few_hundred_cycles_warm() {
        let (mut k, client, server, ep_cptr) = boot_two_threads_one_ep();
        let epobj = ep_object(&k, client, ep_cptr);
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 2,
            caps: vec![],
        };
        // Warm-up run.
        park_server_receiving(&mut k, server, epobj);
        assert!(k.try_fastpath(&sys).is_some());
        // Reset IPC state, then measure a warm run.
        k.objs.tcb_mut(client).state = ThreadState::Running;
        park_server_receiving(&mut k, server, epobj);
        k.force_current_for_test(client);
        let before = k.machine.now();
        assert!(k.try_fastpath(&sys).is_some());
        let warm = k.machine.now() - before;
        // §6.1: "around 200-250 cycles on the ARM1136"; allow a generous
        // band for model differences.
        assert!(
            (100..600).contains(&warm),
            "warm fastpath took {warm} cycles"
        );
    }

    #[test]
    fn fastpath_reply_recv_round_trip() {
        let (mut k, client, server, ep_cptr) = boot_two_threads_one_ep();
        let epobj = ep_object(&k, client, ep_cptr);
        park_server_receiving(&mut k, server, epobj);
        // Client calls; server gets it via fastpath.
        let call = Syscall::Call {
            cptr: ep_cptr,
            len: 1,
            caps: vec![],
        };
        assert_eq!(k.try_fastpath(&call), Some(Ok(())));
        assert_eq!(k.current(), server);
        // Server replies-and-receives via fastpath.
        k.objs.tcb_mut(server).msg = vec![42];
        let rr = Syscall::ReplyRecv {
            cptr: ep_cptr,
            len: 1,
            caps: vec![],
        };
        assert_eq!(k.try_fastpath(&rr), Some(Ok(())));
        assert_eq!(k.current(), client, "caller resumes");
        assert_eq!(k.objs.tcb(client).msg[0], 42);
        assert_eq!(
            k.objs.tcb(server).state,
            ThreadState::BlockedOnRecv { ep: epobj },
            "server parked for the next request"
        );
    }

    #[test]
    fn lower_priority_receiver_disqualifies() {
        let (mut k, client, server, ep_cptr) = boot_two_threads_one_ep();
        let epobj = ep_object(&k, client, ep_cptr);
        k.objs.tcb_mut(server).prio = 1; // below the client's 10
        park_server_receiving(&mut k, server, epobj);
        let sys = Syscall::Call {
            cptr: ep_cptr,
            len: 1,
            caps: vec![],
        };
        assert!(k.try_fastpath(&sys).is_none());
    }
}
