//! The legacy ASID-table design (§3.6, Fig. 4).
//!
//! An 18-bit address-space identifier indexes a sparse two-level table: the
//! top level has 256 entries, each pointing to an ASID pool of 1024 slots.
//! Frame caps store the ASID instead of a page-directory pointer, which
//! lets dangling references exist *safely*: a stale ASID simply fails the
//! agreement check.
//!
//! The cost: **allocating** an ASID scans up to 1024 slots for a free one,
//! and **deleting a pool** iterates up to 1024 address spaces — both
//! "inherently difficult to preempt" (§3.6), which is why the paper's
//! *after* design removes ASIDs entirely.

use std::sync::Arc;

use crate::obj::{ObjId, ObjStore};
use crate::vspace::ASID_POOL_ENTRIES;

/// Top-level ASID table entries (18-bit ASIDs, 1024 per pool).
pub const ASID_TOP_ENTRIES: u32 = 256;

/// The global two-level ASID lookup table.
///
/// The top level is behind an [`Arc`] so that kernel snapshots share it
/// copy-on-write — it mutates only when pools are installed or deleted,
/// which is rare next to the thousands of snapshot clones an exploration
/// takes. Mutators go through [`Arc::make_mut`].
#[derive(Clone, Debug)]
pub struct AsidTable {
    /// Top level: pool object per 1024-ASID block.
    pub pools: Arc<Vec<Option<ObjId>>>,
}

impl AsidTable {
    /// Creates an empty table.
    pub fn new() -> AsidTable {
        AsidTable {
            pools: Arc::new(vec![None; ASID_TOP_ENTRIES as usize]),
        }
    }

    /// Installs `pool` at the first free top-level slot, returning the ASID
    /// base it covers.
    pub fn install_pool(&mut self, pool: ObjId) -> Option<u32> {
        let idx = self.pools.iter().position(|p| p.is_none())?;
        Arc::make_mut(&mut self.pools)[idx] = Some(pool);
        Some(idx as u32 * ASID_POOL_ENTRIES)
    }

    /// The pool covering `asid`, if installed.
    pub fn pool_of(&self, asid: u32) -> Option<ObjId> {
        self.pools
            .get((asid / ASID_POOL_ENTRIES) as usize)
            .copied()
            .flatten()
    }

    /// Resolves an ASID to its page directory (Fig. 4's arrows). Returns
    /// `None` for stale/unassigned ASIDs — the harmless-dangling-reference
    /// property.
    pub fn resolve(&self, store: &ObjStore, asid: u32) -> Option<ObjId> {
        let pool = self.pool_of(asid)?;
        store.asid_pool(pool).entries[(asid % ASID_POOL_ENTRIES) as usize]
    }
}

impl Default for AsidTable {
    fn default() -> AsidTable {
        AsidTable::new()
    }
}

/// Scans `pool` for a free slot — the unpreemptible up-to-1024-iteration
/// search of §3.6. Returns `(slot index, slots scanned)`.
pub fn find_free_slot(store: &ObjStore, pool: ObjId) -> (Option<u32>, u32) {
    let p = store.asid_pool(pool);
    let mut scanned = 0;
    for (i, e) in p.entries.iter().enumerate() {
        scanned += 1;
        if e.is_none() {
            return (Some(i as u32), scanned);
        }
    }
    (None, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::ObjKind;
    use crate::vspace::{AsidPool, PageDirectory};

    fn setup() -> (ObjStore, AsidTable, ObjId) {
        let mut s = ObjStore::new();
        let pool = s.insert(0x8200_0000, 12, ObjKind::AsidPool(AsidPool::new()));
        let t = AsidTable::new();
        (s, t, pool)
    }

    #[test]
    fn install_and_resolve() {
        let (mut s, mut t, pool) = setup();
        let base = t.install_pool(pool).expect("room");
        assert_eq!(base, 0);
        let pd = s.insert(
            0x8300_0000,
            14,
            ObjKind::PageDirectory(PageDirectory::new(false)),
        );
        s.asid_pool_mut(pool).entries[5] = Some(pd);
        assert_eq!(t.resolve(&s, base + 5), Some(pd));
        assert_eq!(t.resolve(&s, base + 6), None, "unassigned ASID");
        assert_eq!(t.resolve(&s, 5 * 1024 + 5), None, "no pool there");
    }

    #[test]
    fn stale_asid_is_harmless() {
        let (mut s, mut t, pool) = setup();
        t.install_pool(pool).expect("room");
        let pd = s.insert(
            0x8300_0000,
            14,
            ObjKind::PageDirectory(PageDirectory::new(false)),
        );
        s.asid_pool_mut(pool).entries[9] = Some(pd);
        // Lazy deletion: drop the entry; a frame cap still storing ASID 9
        // now resolves to None instead of dangling.
        s.asid_pool_mut(pool).entries[9] = None;
        assert_eq!(t.resolve(&s, 9), None);
    }

    #[test]
    fn free_slot_scan_counts_iterations() {
        let (mut s, _t, pool) = setup();
        // Fill the first 1000 slots.
        for i in 0..1000 {
            s.asid_pool_mut(pool).entries[i] = Some(ObjId(0));
        }
        let (slot, scanned) = find_free_slot(&s, pool);
        assert_eq!(slot, Some(1000));
        assert_eq!(scanned, 1001, "the pathological scan the paper removes");
    }

    #[test]
    fn full_pool_scans_everything() {
        let (mut s, _t, pool) = setup();
        for i in 0..ASID_POOL_ENTRIES as usize {
            s.asid_pool_mut(pool).entries[i] = Some(ObjId(0));
        }
        let (slot, scanned) = find_free_slot(&s, pool);
        assert_eq!(slot, None);
        assert_eq!(scanned, ASID_POOL_ENTRIES);
    }

    #[test]
    fn top_level_fills_in_order() {
        let (mut s, mut t, _pool) = setup();
        let p2 = s.insert(0x8201_0000, 12, ObjKind::AsidPool(AsidPool::new()));
        let p3 = s.insert(0x8202_0000, 12, ObjKind::AsidPool(AsidPool::new()));
        assert_eq!(t.install_pool(p2), Some(0));
        assert_eq!(t.install_pool(p3), Some(1024));
    }
}
