//! The §3.6 memory-overhead comparison: shadow page tables vs a
//! Linux-style frame table.
//!
//! The paper's worked example: on a 32-bit system with 256 MiB of physical
//! memory and 4 KiB frames, a frame table (one pointer per frame) occupies
//! 256 KiB. A densely-packed address space covering 256 MiB costs an extra
//! 256 KiB in page-table shadows plus 16 KiB per address space for the
//! directory shadow. This module computes both so the `repro overhead`
//! harness can print the comparison for arbitrary parameters.

/// Parameters of the overhead comparison.
#[derive(Clone, Copy, Debug)]
pub struct OverheadParams {
    /// Physical memory size in bytes.
    pub phys_bytes: u64,
    /// Frame size in bytes (4 KiB in the paper's example).
    pub frame_bytes: u64,
    /// Number of address spaces in the system.
    pub address_spaces: u64,
    /// Virtual memory actually mapped per address space, in bytes.
    pub mapped_per_as: u64,
    /// Fraction of each page table actually used (1.0 = densely packed;
    /// the paper notes sparse tables waste shadow space *and* table space).
    pub pt_density: f64,
}

impl OverheadParams {
    /// The paper's worked example: 256 MiB physical, 4 KiB frames, one
    /// densely-packed 256 MiB address space.
    pub fn paper_example() -> OverheadParams {
        OverheadParams {
            phys_bytes: 256 << 20,
            frame_bytes: 4096,
            address_spaces: 1,
            mapped_per_as: 256 << 20,
            pt_density: 1.0,
        }
    }
}

/// Computed overheads in bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Overheads {
    /// Frame-table design: one 4-byte pointer per physical frame.
    pub frame_table: u64,
    /// Shadow design: page-table shadows actually allocated.
    pub shadow_pt: u64,
    /// Shadow design: 16 KiB directory shadow per address space.
    pub shadow_pd: u64,
}

impl Overheads {
    /// Total shadow-design overhead.
    pub fn shadow_total(&self) -> u64 {
        self.shadow_pt + self.shadow_pd
    }
}

/// Computes both designs' overheads (ARMv6 geometry: 1 KiB page tables
/// covering 1 MiB each, 16 KiB directories).
pub fn compute(p: &OverheadParams) -> Overheads {
    let frame_table = (p.phys_bytes / p.frame_bytes) * 4;
    // Page tables needed per address space: one per 1 MiB of mapped VA,
    // inflated by sparseness (a half-used PT still needs a whole shadow).
    let pts_per_as = ((p.mapped_per_as as f64 / (1 << 20) as f64) / p.pt_density).ceil() as u64;
    let shadow_pt = p.address_spaces * pts_per_as * 1024; // 1 KiB shadow per PT
    let shadow_pd = p.address_spaces * 16 * 1024; // 16 KiB shadow per PD
    Overheads {
        frame_table,
        shadow_pt,
        shadow_pd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        // §3.6: "the frame table would occupy 256 KiB of memory" and "a
        // densely-packed page directory covering 256 MiB of virtual address
        // space would use an extra 256 KiB in shadow page tables, and an
        // extra 16 KiB per address space".
        let o = compute(&OverheadParams::paper_example());
        assert_eq!(o.frame_table, 256 * 1024);
        assert_eq!(o.shadow_pt, 256 * 1024);
        assert_eq!(o.shadow_pd, 16 * 1024);
    }

    #[test]
    fn sparse_tables_inflate_shadows() {
        let mut p = OverheadParams::paper_example();
        p.pt_density = 0.25; // quarter-used page tables
        let o = compute(&p);
        assert_eq!(o.shadow_pt, 4 * 256 * 1024);
    }

    #[test]
    fn many_small_address_spaces() {
        let p = OverheadParams {
            phys_bytes: 128 << 20,
            frame_bytes: 4096,
            address_spaces: 50,
            mapped_per_as: 4 << 20,
            pt_density: 1.0,
        };
        let o = compute(&p);
        assert_eq!(o.frame_table, 128 * 1024);
        assert_eq!(o.shadow_pt, 50 * 4 * 1024);
        assert_eq!(o.shadow_pd, 50 * 16 * 1024);
        // With many sparse address spaces the PD shadows dominate — the
        // regime where the paper concedes the overhead "might be considered
        // detrimental".
        assert!(o.shadow_pd > o.shadow_pt);
    }
}
