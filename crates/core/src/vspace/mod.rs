//! Virtual address-space management — both designs of §3.6.
//!
//! ARMv6 geometry throughout: a 16 KiB page directory of 4096 entries, each
//! covering 1 MiB (a section mapping or a pointer to a page table); 1 KiB
//! page tables of 256 entries, each mapping a 4 KiB page. The kernel
//! reserves the top 256 MiB of every address space (the 256 top PD entries,
//! exactly 1 KiB of the directory — the global-mapping copy the paper
//! measures at ~20 µs).
//!
//! * [`asid`] implements the **legacy design** (Fig. 4): frame caps carry an
//!   18-bit ASID resolved through a two-level lookup table; deletion is
//!   lazy (drop the table entry, flush the TLB) but ASID allocation and
//!   pool deletion are unpreemptible scans over 1024 entries.
//! * The **shadow design** (Fig. 5) doubles each paging structure with a
//!   shadow array of back-pointers from each entry to the capability slot
//!   that installed it, making unmap/delete eager, O(1) per entry, and
//!   preemptible per entry, with the lowest-mapped index stored in the
//!   object to avoid rescanning — incremental consistency again.
//!
//! [`overhead`] reproduces the §3.6 memory-overhead comparison against a
//! Linux-style frame table.

pub mod asid;
pub mod overhead;

use rt_hw::Addr;

use crate::cap::SlotRef;
use crate::obj::ObjId;

/// Number of page-directory entries (ARMv6: 4096 × 1 MiB).
pub const PD_ENTRIES: u32 = 4096;
/// Number of page-table entries (ARMv6: 256 × 4 KiB).
pub const PT_ENTRIES: u32 = 256;
/// First PD index of the kernel's reserved top 256 MiB.
pub const KERNEL_PDE_START: u32 = 3840;
/// Bytes of the page directory covered by the kernel mappings (256 entries
/// of 4 bytes — the 1 KiB copy of §3.5).
pub const KERNEL_MAPPING_BYTES: u32 = (PD_ENTRIES - KERNEL_PDE_START) * 4;

/// PD index for a virtual address.
pub fn pd_index(vaddr: Addr) -> u32 {
    vaddr >> 20
}

/// PT index for a virtual address.
pub fn pt_index(vaddr: Addr) -> u32 {
    (vaddr >> 12) & (PT_ENTRIES - 1)
}

/// A physical memory frame object (the mappable unit).
#[derive(Clone, Debug)]
pub struct Frame {
    /// Size in bits (12 = 4 KiB small page … 24 = 16 MiB supersection).
    pub size_bits: u8,
}

impl Frame {
    /// Creates a frame descriptor.
    pub fn new(size_bits: u8) -> Frame {
        Frame { size_bits }
    }
}

/// One page-directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Hash)]
pub enum PdEntry {
    /// Unmapped.
    #[default]
    Invalid,
    /// 1 MiB section mapping directly to a frame.
    Section {
        /// The mapped frame.
        frame: ObjId,
    },
    /// Pointer to a second-level page table.
    Table {
        /// The installed page table.
        pt: ObjId,
    },
    /// Kernel global mapping (present in every address space — the §3.5
    /// invariant "all page directories will contain these global
    /// mappings").
    Kernel,
}

/// One page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Hash)]
pub enum PtEntry {
    /// Unmapped.
    #[default]
    Invalid,
    /// 4 KiB page mapping.
    Page {
        /// The mapped frame.
        frame: ObjId,
    },
}

/// A top-level page directory (an address space).
#[derive(Clone, Debug, Hash)]
pub struct PageDirectory {
    /// The 4096 hardware entries.
    pub entries: Vec<PdEntry>,
    /// Shadow: for each entry, the capability slot that installed it
    /// (Fig. 5). Present (allocated) only under the shadow design.
    pub shadow: Vec<Option<SlotRef>>,
    /// Lowest user index that may be mapped — the §3.6 resume cursor:
    /// "we also store the index of the lowest mapped entry in the page
    /// table and only resume the operation from that point."
    pub lowest_mapped: u32,
    /// Whether the kernel global mappings have been copied in yet (they are
    /// copied, unpreemptibly, during creation).
    pub kernel_mapped: bool,
}

impl PageDirectory {
    /// Creates a directory with all user entries invalid and kernel
    /// mappings *not yet* installed (creation copies them in).
    pub fn new(shadow: bool) -> PageDirectory {
        PageDirectory {
            entries: vec![PdEntry::Invalid; PD_ENTRIES as usize],
            shadow: if shadow {
                vec![None; PD_ENTRIES as usize]
            } else {
                Vec::new()
            },
            lowest_mapped: PD_ENTRIES, // nothing mapped
            kernel_mapped: false,
        }
    }

    /// Installs the kernel global mappings (the 1 KiB copy).
    pub fn install_kernel_mappings(&mut self) {
        for i in KERNEL_PDE_START..PD_ENTRIES {
            self.entries[i as usize] = PdEntry::Kernel;
        }
        self.kernel_mapped = true;
    }

    /// Number of mapped *user* entries.
    pub fn user_mapped(&self) -> u32 {
        self.entries[..KERNEL_PDE_START as usize]
            .iter()
            .filter(|e| !matches!(e, PdEntry::Invalid))
            .count() as u32
    }

    /// Updates the lowest-mapped cursor after mapping at `index`.
    pub fn note_mapped(&mut self, index: u32) {
        if index < self.lowest_mapped {
            self.lowest_mapped = index;
        }
    }
}

/// A second-level page table.
#[derive(Clone, Debug, Hash)]
pub struct PageTable {
    /// The 256 hardware entries.
    pub entries: Vec<PtEntry>,
    /// Shadow back-pointers (Fig. 5), shadow design only.
    pub shadow: Vec<Option<SlotRef>>,
    /// Resume cursor for preemptible deletion (§3.6).
    pub lowest_mapped: u32,
    /// Where this table is installed: `(pd, pd_index)`.
    pub mapped_in: Option<(ObjId, u32)>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new(shadow: bool) -> PageTable {
        PageTable {
            entries: vec![PtEntry::Invalid; PT_ENTRIES as usize],
            shadow: if shadow {
                vec![None; PT_ENTRIES as usize]
            } else {
                Vec::new()
            },
            lowest_mapped: PT_ENTRIES,
            mapped_in: None,
        }
    }

    /// Number of mapped entries.
    pub fn mapped(&self) -> u32 {
        self.entries
            .iter()
            .filter(|e| !matches!(e, PtEntry::Invalid))
            .count() as u32
    }

    /// Updates the lowest-mapped cursor after mapping at `index`.
    pub fn note_mapped(&mut self, index: u32) {
        if index < self.lowest_mapped {
            self.lowest_mapped = index;
        }
    }
}

/// An ASID pool (legacy design): 1024 address-space slots.
#[derive(Clone, Debug, Hash)]
pub struct AsidPool {
    /// Slot `i` holds the page directory assigned ASID `base + i`.
    pub entries: Vec<Option<ObjId>>,
}

/// Entries per ASID pool (§3.6: "each second level (ASID pool) providing
/// entries for 1024 address spaces").
pub const ASID_POOL_ENTRIES: u32 = 1024;

impl AsidPool {
    /// Creates an empty pool.
    pub fn new() -> AsidPool {
        AsidPool {
            entries: vec![None; ASID_POOL_ENTRIES as usize],
        }
    }

    /// Number of assigned slots.
    pub fn assigned(&self) -> u32 {
        self.entries.iter().filter(|e| e.is_some()).count() as u32
    }
}

impl Default for AsidPool {
    fn default() -> AsidPool {
        AsidPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_extraction() {
        assert_eq!(pd_index(0x0010_0000), 1);
        assert_eq!(pd_index(0xf000_0000), 3840);
        assert_eq!(pt_index(0x0000_1000), 1);
        assert_eq!(pt_index(0x0000_f000), 15);
        assert_eq!(pt_index(0x0010_0000), 0);
    }

    #[test]
    fn kernel_mapping_is_1kib() {
        assert_eq!(KERNEL_MAPPING_BYTES, 1024);
    }

    #[test]
    fn kernel_mappings_cover_top_256mib() {
        let mut pd = PageDirectory::new(true);
        assert!(!pd.kernel_mapped);
        pd.install_kernel_mappings();
        assert!(pd.kernel_mapped);
        assert_eq!(pd.entries[3839], PdEntry::Invalid);
        assert_eq!(pd.entries[3840], PdEntry::Kernel);
        assert_eq!(pd.entries[4095], PdEntry::Kernel);
        assert_eq!(pd.user_mapped(), 0, "kernel entries are not user entries");
    }

    #[test]
    fn lowest_mapped_cursor() {
        let mut pt = PageTable::new(true);
        assert_eq!(pt.lowest_mapped, PT_ENTRIES);
        pt.note_mapped(100);
        pt.note_mapped(40);
        pt.note_mapped(200);
        assert_eq!(pt.lowest_mapped, 40);
    }

    #[test]
    fn shadow_allocated_only_when_requested() {
        assert!(PageDirectory::new(false).shadow.is_empty());
        assert_eq!(PageDirectory::new(true).shadow.len(), 4096);
        assert!(PageTable::new(false).shadow.is_empty());
        assert_eq!(PageTable::new(true).shadow.len(), 256);
    }

    #[test]
    fn asid_pool_counts() {
        let mut p = AsidPool::new();
        assert_eq!(p.assigned(), 0);
        p.entries[7] = Some(ObjId(1));
        p.entries[1000] = Some(ObjId(2));
        assert_eq!(p.assigned(), 2);
    }
}
