//! # rt-kernel — an event-based protected microkernel with bounded
//! interrupt response
//!
//! This crate reproduces the system studied in Blackham, Shi & Heiser,
//! *Improving Interrupt Response Time in a Verifiable Protected
//! Microkernel* (EuroSys 2012): an seL4-style third-generation microkernel
//! that
//!
//! * is **event-based** — one kernel stack, no in-kernel preemption except
//!   at explicit *preemption points* (§2);
//! * runs with **interrupts disabled** for the whole of every kernel entry,
//!   polling for pending interrupts only at preemption points and on kernel
//!   exit (§2.1);
//! * makes preempted operations **restartable system calls**: progress is
//!   stored in the affected *objects* (incremental consistency), never in a
//!   per-thread continuation, so re-executing the trapped system call
//!   resumes the operation (§2.1, §3.4);
//! * manages all authority through **capabilities** held in guarded-decode
//!   CNodes, with a derivation tree supporting revocation (§3.6, Fig. 7);
//! * delegates **all memory allocation to userspace** via untyped retype
//!   (§3) — the kernel only checks and clears.
//!
//! Both the *before* and *after* designs from the paper are implemented and
//! selected by [`KernelConfig`]:
//!
//! | Area | before (§ ref) | after (§ ref) |
//! |---|---|---|
//! | Scheduler | lazy scheduling (§3.1, Fig. 2) | Benno scheduling + 2-level priority bitmap with CLZ (§3.1–3.2, Fig. 3) |
//! | Endpoint delete | drain queue in one go | preemption point per dequeued thread (§3.3) |
//! | Badged abort | scan whole queue in one go | preemption point per element with the 4-tuple resume state stored in the endpoint (§3.4) |
//! | Object creation | clear inside the creation path | clear first, preemptible at 1 KiB, progress stored in the object (§3.5) |
//! | Address spaces | ASID lookup table, lazy deletion, unpreemptible pool scans (§3.6, Fig. 4) | shadow page tables, eager back-pointers, preemptible deletion (§3.6, Fig. 5) |
//!
//! The kernel executes on the [`rt_hw::Machine`] timing model: every
//! instruction fetch and data access of every kernel path is charged through
//! the modelled caches, so measured cycle counts respond to cache pinning,
//! L2 configuration and branch prediction exactly as the paper's measured
//! numbers do. The per-path instruction sequences live in [`kprog`] as data
//! tables that double as the control-flow model consumed by the static WCET
//! analysis in `rt-wcet` — the analogue of analysing the compiled binary
//! that is actually executed (§5).
//!
//! For the §6-style cost attribution the kernel also *narrates* its
//! execution: it emits phase markers into the machine's trace sink
//! (capability decode, fastpath commit, preemption-point checks,
//! endpoint-deletion and badged-abort resume steps — the vocabulary is in
//! `docs/TRACING.md`) and can keep an optional per-block count/cycle
//! profile ([`kernel::Kernel::start_profile`], [`kernel::BlockStat`]).
//! Both are off by default and free when off, so Table 1/2 measurements
//! are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cap;
pub mod cnode;
pub mod decision;
pub mod ep;
pub mod fastpath;
pub mod invariants;
pub mod irqk;
pub mod kernel;
pub mod kprog;
pub mod ntfn;
pub mod obj;
pub mod pinning;
pub mod preempt;
pub mod sched;
pub mod smp;
pub mod syscall;
pub mod system;
pub mod tcb;
pub mod testutil;
pub mod untyped;
pub mod vspace;

pub use cap::{Badge, Cap, CapType, Rights, SlotRef};
pub use kernel::{EntryPoint, Kernel, KernelConfig, SchedKind, VmKind};
pub use obj::{ObjId, ObjKind};
pub use preempt::{PreemptResult, Preempted};
pub use syscall::{Syscall, SyscallResult};
pub use system::{Action, System, ThreadScript};

/// Maximum number of threads the analysis assumes can exist — in the real
/// system this is bounded by physical memory (§3.3: the endpoint queue is
/// "limited by the number of threads in the system, which is limited by the
/// amount of physical memory"). 128 MiB of RAM at a 512-byte TCB plus
/// associated state supports a few thousand threads; the static analysis of
/// the *before* kernel uses this as the loop bound for unpreemptible queue
/// walks.
pub const MAX_THREADS: u32 = 4096;

/// Number of thread priorities (§3.2).
pub const NUM_PRIOS: u32 = 256;

/// Size of a capability slot in bytes (§3.6: "seL4 caps are 16 bytes").
pub const CAP_SLOT_BYTES: u32 = 16;

/// Preemptible clearing/copying granularity in bytes (§3.5: "we made all
/// other block copy and clearing operations in seL4 preempt at multiples of
/// 1 KiB").
pub const CLEAR_CHUNK_BYTES: u32 = 1024;

/// Maximum message length in 32-bit words for a full IPC transfer.
pub const MAX_MSG_WORDS: u32 = 120;

/// Maximum number of capabilities transferable in one IPC.
pub const MAX_XFER_CAPS: u32 = 3;

/// Depth of the capability address space in bits; a pathological capability
/// space requires one lookup per bit (§6.1, Fig. 7).
pub const CSPACE_DEPTH_BITS: u32 = 32;
