//! The kernel "binary": block-level code model shared by execution and
//! analysis.
//!
//! The paper's analysis "was performed on a compiled binary of the kernel"
//! (§5). We have no ARM binary, so this module plays that role: every
//! kernel operation is described as a sequence of **basic blocks**, each a
//! list of abstract instructions ([`Ik`]) laid out at concrete code
//! addresses. The same tables are used twice:
//!
//! * the **runtime** ([`crate::kernel::Kernel::blk`]) walks a block's
//!   instruction list as the Rust control flow passes through it, charging
//!   every instruction fetch and data access to the `rt_hw` machine — this
//!   is what produces *observed* execution times;
//! * the **static analysis** (`rt-wcet`) walks the same lists with its
//!   pessimistic cache model and a control-flow graph over the same blocks
//!   — this is what produces *computed* bounds.
//!
//! Because both sides read one table, the analysed program *is* the
//! executed program, and the computed/observed gap that emerges is due to
//! model conservatism — the same source of pessimism the paper quantifies
//! in Fig. 8 — rather than accidental divergence.
//!
//! Data addresses are classified ([`D`]): stack and global accesses have
//! statically-known addresses (and are what §4 pins, alongside the
//! interrupt-path instruction lines — see [`interrupt_path_blocks`]);
//! object accesses ([`D::Ob`]) depend on runtime placement and are the
//! analysis's unknowable, always-miss traffic.

use std::collections::HashMap;

use rt_hw::Addr;

/// Kernel code is linked at the top of the virtual address space.
pub const KERNEL_CODE_BASE: Addr = 0xf000_0000;
/// Top of the single kernel stack; the paper pins "the first 256 bytes of
/// stack memory" (§4).
pub const KERNEL_STACK_TOP: Addr = 0xf010_1000;
/// Bytes of stack the model touches (kept within the pinnable 256 B).
pub const KERNEL_STACK_SPAN: u32 = 256;
/// Base of kernel global data ("some key data regions", §4).
pub const KERNEL_GLOBALS_BASE: Addr = 0xf011_0000;
/// Bytes of globals the model touches.
pub const KERNEL_GLOBALS_SPAN: u32 = 1024;
/// Modelled latency of an uncached device-register access (AVIC).
pub const DEVICE_ACCESS_CYCLES: u64 = 20;

/// Data-access class, determining how runtime picks the address and how the
/// analysis classifies the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum D {
    /// Kernel stack (static address, pinnable).
    St,
    /// Kernel global (static address, pinnable).
    Gl,
    /// Kernel object (dynamic address — always a miss to the analysis).
    Ob,
    /// Device register (uncached, fixed latency).
    Dv,
}

/// One abstract instruction (or a run of identical ones).
///
/// **Grouping convention:** a multi-count `L`/`S` entry denotes accesses to
/// *consecutive words of one region* (e.g. a register save, a cap slot, a
/// line being cleared) — the static analysis may treat the run as touching
/// a single cache line. Accesses to *distinct* objects must be separate
/// entries, or the analysis would undercount worst-case misses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ik {
    /// `n` data-processing instructions (1 cycle each).
    A(u8),
    /// Count-leading-zeros (the §3.2 scheduler bitmap instruction).
    Z,
    /// Multiply.
    M,
    /// `n` loads of consecutive words from one region of the given class.
    L(D, u8),
    /// `n` stores of consecutive words to one region of the given class.
    S(D, u8),
    /// Branch terminating or continuing the block.
    B,
}

impl Ik {
    /// Number of machine instructions this entry expands to.
    pub fn count(self) -> u32 {
        match self {
            Ik::A(n) | Ik::L(_, n) | Ik::S(_, n) => n as u32,
            Ik::Z | Ik::M | Ik::B => 1,
        }
    }
}

/// Kernel functions — the units of code layout (each gets a contiguous,
/// line-aligned code region).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum KFn {
    Entry,
    Exit,
    Dispatch,
    Resolve,
    EpSend,
    EpRecv,
    Transfer,
    Wake,
    Sched,
    CtxSw,
    Irq,
    Preempt,
    EpDelete,
    Abort,
    Retype,
    Vspace,
    Fault,
    Fastpath,
    TcbOps,
    CNodeOps,
    NtfnOps,
}

/// Basic blocks of the kernel. Grouped by function; the comments give the
/// paper hook for the interesting ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Block {
    // --- KFn::Entry: exception vectors (context save) ---
    SwiEntry,
    UndefEntry,
    PfEntry,
    IrqEntry,
    // --- KFn::Exit ---
    /// Final pending-interrupt check before returning to user (§2.1).
    KExitCheck,
    ExitRestore,
    // --- KFn::Dispatch: syscall decode (the cap-type switch of Fig. 6) ---
    DispatchStart,
    DispatchSwitch,
    CaseEp,
    CaseCNode,
    CaseUntyped,
    CaseTcb,
    CaseVspace,
    CaseIrq,
    CaseNtfn,
    CaseReply,
    // --- KFn::Resolve: capability-space decode (Fig. 7) ---
    ResolveEntry,
    /// Per-level lookup: up to 32 per decode (§6.1).
    ResolveLevel,
    ResolveFinish,
    // --- KFn::EpSend / EpRecv: slow-path IPC ---
    SendCheck,
    SendEnqueue,
    SendDequeueRecv,
    RecvCheck,
    RecvEnqueue,
    RecvDequeueSend,
    // --- KFn::Transfer: message and capability transfer ---
    TransferSetup,
    /// Per message word; up to [`crate::MAX_MSG_WORDS`].
    TransferWord,
    TransferBadge,
    /// Per transferred cap (after a Resolve); up to
    /// [`crate::MAX_XFER_CAPS`].
    CapXferOne,
    ReplyXfer,
    // --- KFn::Wake: making threads runnable ---
    WakeThread,
    /// Benno scheduling's direct switch (§3.1): the woken thread runs
    /// immediately and is never enqueued.
    DirectSwitch,
    EnqueueThread,
    DequeueThread,
    /// §3.2 bitmap maintenance.
    BitmapSet,
    BitmapClear,
    // --- KFn::Sched: chooseThread ---
    /// Lazy scheduling (Fig. 2): per queue element examined.
    SchedLazyIter,
    /// Lazy scheduling: per blocked thread dequeued — the unbounded work.
    SchedLazyDequeue,
    /// Priority-scan step (Fig. 3 and the lazy outer loop).
    SchedPrioScan,
    /// §3.2: two loads + two CLZ; no loop.
    SchedBitmap,
    SchedCommit,
    SchedIdle,
    // --- KFn::CtxSw ---
    CtxSwitch,
    // --- KFn::Irq: interrupt delivery ---
    IrqGet,
    IrqLookup,
    IrqSignal,
    IrqAck,
    IrqSpurious,
    // --- KFn::Preempt: preemption points (§2.1) ---
    PreemptCheck,
    PreemptSave,
    // --- KFn::EpDelete (§3.3) ---
    EpDelSetup,
    /// Per dequeued waiter; preemption point after each (§3.3).
    EpDelIter,
    EpDelFinish,
    // --- KFn::Abort: badged abort (§3.4) ---
    /// Writes the four-field resume state into the endpoint.
    AbortSetup,
    /// Per examined waiter; preemption point after each.
    AbortIter,
    AbortRemove,
    AbortFinish,
    // --- KFn::Retype: object creation (§3.5) ---
    RetypeCheck,
    /// Clears one 32-byte line; 32 of these per 1 KiB preemptible chunk.
    ClearLine,
    RetypeCreateObj,
    RetypeFinish,
    /// Copies one line of the kernel global mappings into a new page
    /// directory; 32 of these per creation, unpreemptible (§3.5: ~20 µs).
    PdCopyLine,
    // --- KFn::Vspace (§3.6) ---
    MapFrameCheck,
    MapFrameCommit,
    UnmapFrame,
    /// Per entry of a preemptible address-space teardown (shadow design).
    VsDelIter,
    VsDelFinish,
    /// Per slot of the unpreemptible free-ASID scan (legacy design).
    AsidAllocIter,
    /// Per entry of the unpreemptible ASID-pool deletion (legacy design).
    AsidPoolDelIter,
    AsidResolve,
    TlbFlush,
    // --- KFn::Fault ---
    FaultSetup,
    /// Per word of the fault message.
    FaultMsgWord,
    // --- KFn::Fastpath (§6.1: 200–250 cycles) ---
    FastpathCheck,
    FastpathXfer,
    FastpathCommit,
    // --- KFn::TcbOps / CNodeOps / NtfnOps ---
    TcbInvoke,
    CNodeCopy,
    CNodeDelete,
    /// Per revoked descendant.
    RevokeIter,
    NtfnSignalOp,
    NtfnWaitOp,
}

/// Specification of one block: owning function and instruction list.
#[derive(Clone, Copy, Debug)]
pub struct BlockSpec {
    /// Function this block belongs to (code layout unit).
    pub func: KFn,
    /// Instruction sequence.
    pub instrs: &'static [Ik],
}

impl BlockSpec {
    /// Total machine instructions in the block.
    pub fn instr_count(&self) -> u32 {
        self.instrs.iter().map(|i| i.count()).sum()
    }

    /// Number of object-class data operands the runtime must supply.
    pub fn obj_ops(&self) -> u32 {
        self.instrs
            .iter()
            .map(|i| match i {
                Ik::L(D::Ob, n) | Ik::S(D::Ob, n) => *n as u32,
                _ => 0,
            })
            .sum()
    }

    /// Code bytes occupied (4 bytes per instruction).
    pub fn code_bytes(&self) -> u32 {
        self.instr_count() * 4
    }
}

use Ik::{A, B, L, M, S, Z};
use D::{Dv, Gl, Ob, St};

impl Block {
    /// Every block, in code-layout order.
    pub const ALL: &'static [Block] = &[
        Block::SwiEntry,
        Block::UndefEntry,
        Block::PfEntry,
        Block::IrqEntry,
        Block::KExitCheck,
        Block::ExitRestore,
        Block::DispatchStart,
        Block::DispatchSwitch,
        Block::CaseEp,
        Block::CaseCNode,
        Block::CaseUntyped,
        Block::CaseTcb,
        Block::CaseVspace,
        Block::CaseIrq,
        Block::CaseNtfn,
        Block::CaseReply,
        Block::ResolveEntry,
        Block::ResolveLevel,
        Block::ResolveFinish,
        Block::SendCheck,
        Block::SendEnqueue,
        Block::SendDequeueRecv,
        Block::RecvCheck,
        Block::RecvEnqueue,
        Block::RecvDequeueSend,
        Block::TransferSetup,
        Block::TransferWord,
        Block::TransferBadge,
        Block::CapXferOne,
        Block::ReplyXfer,
        Block::WakeThread,
        Block::DirectSwitch,
        Block::EnqueueThread,
        Block::DequeueThread,
        Block::BitmapSet,
        Block::BitmapClear,
        Block::SchedLazyIter,
        Block::SchedLazyDequeue,
        Block::SchedPrioScan,
        Block::SchedBitmap,
        Block::SchedCommit,
        Block::SchedIdle,
        Block::CtxSwitch,
        Block::IrqGet,
        Block::IrqLookup,
        Block::IrqSignal,
        Block::IrqAck,
        Block::IrqSpurious,
        Block::PreemptCheck,
        Block::PreemptSave,
        Block::EpDelSetup,
        Block::EpDelIter,
        Block::EpDelFinish,
        Block::AbortSetup,
        Block::AbortIter,
        Block::AbortRemove,
        Block::AbortFinish,
        Block::RetypeCheck,
        Block::ClearLine,
        Block::RetypeCreateObj,
        Block::RetypeFinish,
        Block::PdCopyLine,
        Block::MapFrameCheck,
        Block::MapFrameCommit,
        Block::UnmapFrame,
        Block::VsDelIter,
        Block::VsDelFinish,
        Block::AsidAllocIter,
        Block::AsidPoolDelIter,
        Block::AsidResolve,
        Block::TlbFlush,
        Block::FaultSetup,
        Block::FaultMsgWord,
        Block::FastpathCheck,
        Block::FastpathXfer,
        Block::FastpathCommit,
        Block::TcbInvoke,
        Block::CNodeCopy,
        Block::CNodeDelete,
        Block::RevokeIter,
        Block::NtfnSignalOp,
        Block::NtfnWaitOp,
    ];

    /// The block's specification.
    pub fn spec(self) -> BlockSpec {
        macro_rules! b {
            ($f:ident, $($i:expr),+ $(,)?) => {
                BlockSpec { func: KFn::$f, instrs: &[$($i),+] }
            };
        }
        match self {
            // Exception vectors: save a trap frame to the kernel stack and
            // load the current-thread pointer.
            Block::SwiEntry => b!(Entry, A(2), S(St, 12), L(Gl, 1), A(4)),
            Block::UndefEntry => b!(Entry, A(2), S(St, 12), L(Gl, 1), A(5)),
            Block::PfEntry => b!(Entry, A(2), S(St, 12), L(Gl, 1), A(5)),
            Block::IrqEntry => b!(Entry, A(2), S(St, 12), L(Gl, 1), A(4)),
            Block::KExitCheck => b!(Exit, A(2), L(Dv, 1), B),
            Block::ExitRestore => b!(Exit, A(2), L(Gl, 1), L(Ob, 6), L(St, 10), A(2), B),
            Block::DispatchStart => b!(Dispatch, A(4), L(Ob, 2), A(4), B),
            Block::DispatchSwitch => b!(Dispatch, A(2), L(Ob, 1), A(2), B),
            Block::CaseEp => b!(Dispatch, A(3), B),
            Block::CaseCNode => b!(Dispatch, A(3), B),
            Block::CaseUntyped => b!(Dispatch, A(4), B),
            Block::CaseTcb => b!(Dispatch, A(3), B),
            Block::CaseVspace => b!(Dispatch, A(4), B),
            Block::CaseIrq => b!(Dispatch, A(3), B),
            Block::CaseNtfn => b!(Dispatch, A(3), B),
            Block::CaseReply => b!(Dispatch, A(3), B),
            Block::ResolveEntry => b!(Resolve, A(5), L(Ob, 2), A(2), B),
            // One guarded-decode level: CNode header, then the slot's two
            // words (Fig. 7: each level is another potential cache miss).
            Block::ResolveLevel => b!(Resolve, A(4), L(Ob, 1), L(Ob, 2), A(3), B),
            Block::ResolveFinish => b!(Resolve, A(3), B),
            Block::SendCheck => b!(EpSend, A(4), L(Ob, 2), A(2), B),
            // Load ep tail; store sender link fields; store ep tail; store
            // the old tail's next pointer (a different TCB).
            Block::SendEnqueue => {
                b!(
                    EpSend,
                    A(3),
                    L(Ob, 1),
                    S(Ob, 3),
                    S(Ob, 1),
                    S(Ob, 1),
                    A(2),
                    B
                )
            }
            Block::SendDequeueRecv => {
                b!(
                    EpSend,
                    A(3),
                    L(Ob, 1),
                    L(Ob, 2),
                    S(Ob, 2),
                    S(Ob, 1),
                    A(3),
                    B
                )
            }
            Block::RecvCheck => b!(EpRecv, A(4), L(Ob, 2), A(2), B),
            Block::RecvEnqueue => {
                b!(
                    EpRecv,
                    A(3),
                    L(Ob, 1),
                    S(Ob, 3),
                    S(Ob, 1),
                    S(Ob, 1),
                    A(2),
                    B
                )
            }
            Block::RecvDequeueSend => {
                b!(
                    EpRecv,
                    A(3),
                    L(Ob, 1),
                    L(Ob, 2),
                    S(Ob, 2),
                    S(Ob, 1),
                    A(3),
                    B
                )
            }
            Block::TransferSetup => b!(Transfer, A(6), L(Ob, 1), L(Ob, 1), B),
            Block::TransferWord => b!(Transfer, A(1), L(Ob, 1), S(Ob, 1), B),
            Block::TransferBadge => b!(Transfer, A(2), S(Ob, 2), B),
            Block::CapXferOne => b!(Transfer, A(6), L(Ob, 2), S(Ob, 3), A(3), B),
            Block::ReplyXfer => b!(Transfer, A(6), L(Ob, 1), L(Ob, 1), S(Ob, 3), B),
            Block::WakeThread => b!(Wake, A(3), S(Ob, 2), A(2), B),
            Block::DirectSwitch => b!(Wake, A(4), S(Gl, 1), A(2), B),
            Block::EnqueueThread => {
                b!(Wake, A(2), L(Ob, 1), S(Ob, 3), S(Ob, 1), A(2), B)
            }
            Block::DequeueThread => {
                b!(Wake, A(2), L(Ob, 2), S(Ob, 1), S(Ob, 1), S(Ob, 2), A(2), B)
            }
            Block::BitmapSet => b!(Wake, A(2), L(Gl, 1), S(Gl, 2), B),
            Block::BitmapClear => b!(Wake, A(2), L(Gl, 1), S(Gl, 2), B),
            Block::SchedLazyIter => b!(Sched, A(2), L(Ob, 1), B),
            Block::SchedLazyDequeue => {
                b!(Sched, A(2), L(Ob, 2), S(Ob, 1), S(Ob, 1), S(Ob, 2), B)
            }
            Block::SchedPrioScan => b!(Sched, A(1), L(Gl, 1), B),
            // §3.2: "using two loads and two CLZ instructions".
            Block::SchedBitmap => b!(Sched, A(2), L(Gl, 1), Z, L(Gl, 1), Z, A(2), B),
            Block::SchedCommit => b!(Sched, A(3), L(Ob, 1), S(Gl, 2), B),
            Block::SchedIdle => b!(Sched, A(2), S(Gl, 1), B),
            Block::CtxSwitch => b!(CtxSw, A(4), L(Ob, 8), S(Gl, 1), A(4), B),
            Block::IrqGet => b!(Irq, A(2), L(Dv, 1), A(2), B),
            Block::IrqLookup => b!(Irq, A(2), L(Gl, 1), A(1), B),
            Block::IrqSignal => b!(Irq, A(3), L(Ob, 2), S(Ob, 2), A(2), B),
            Block::IrqAck => b!(Irq, A(2), S(Dv, 1), B),
            Block::IrqSpurious => b!(Irq, A(2), B),
            // §2.1: a preemption point is a cheap pending-interrupt check.
            Block::PreemptCheck => b!(Preempt, A(1), L(Dv, 1), B),
            Block::PreemptSave => b!(Preempt, A(4), S(Ob, 1), S(Ob, 1), S(Gl, 1), B),
            Block::EpDelSetup => b!(EpDelete, A(3), L(Ob, 1), S(Ob, 1), B),
            Block::EpDelIter => {
                b!(
                    EpDelete,
                    A(3),
                    L(Ob, 1),
                    L(Ob, 1),
                    S(Ob, 2),
                    S(Ob, 1),
                    A(2),
                    B
                )
            }
            Block::EpDelFinish => b!(EpDelete, A(2), S(Ob, 1), B),
            // §3.4: store the four resume fields in the endpoint.
            Block::AbortSetup => b!(Abort, A(4), L(Ob, 2), S(Ob, 4), B),
            Block::AbortIter => b!(Abort, A(4), L(Ob, 3), A(2), B),
            Block::AbortRemove => b!(Abort, A(2), S(Ob, 1), S(Ob, 1), S(Ob, 2), A(1), B),
            Block::AbortFinish => b!(Abort, A(2), S(Ob, 2), B),
            Block::RetypeCheck => b!(Retype, A(8), L(Ob, 2), A(4), B),
            Block::ClearLine => b!(Retype, A(1), S(Ob, 8), B),
            Block::RetypeCreateObj => b!(Retype, A(6), S(Ob, 3), S(Ob, 2), A(3), B),
            Block::RetypeFinish => b!(Retype, A(3), S(Ob, 2), B),
            Block::PdCopyLine => b!(Retype, A(1), L(Gl, 2), S(Ob, 8), B),
            Block::MapFrameCheck => b!(Vspace, A(6), L(Ob, 2), L(Ob, 1), A(3), B),
            Block::MapFrameCommit => {
                b!(Vspace, A(3), S(Ob, 1), S(Ob, 1), S(Ob, 1), A(2), B)
            }
            Block::UnmapFrame => {
                b!(
                    Vspace,
                    A(4),
                    L(Ob, 2),
                    S(Ob, 1),
                    S(Ob, 1),
                    S(Ob, 1),
                    A(2),
                    B
                )
            }
            Block::VsDelIter => {
                b!(
                    Vspace,
                    A(3),
                    L(Ob, 1),
                    L(Ob, 1),
                    S(Ob, 1),
                    S(Ob, 1),
                    A(2),
                    B
                )
            }
            Block::VsDelFinish => b!(Vspace, A(2), S(Ob, 1), B),
            Block::AsidAllocIter => b!(Vspace, A(2), L(Ob, 1), B),
            Block::AsidPoolDelIter => {
                b!(Vspace, A(3), L(Ob, 1), S(Ob, 1), S(Ob, 1), A(2), B)
            }
            Block::AsidResolve => b!(Vspace, A(2), L(Gl, 1), L(Ob, 1), A(1), B),
            Block::TlbFlush => b!(Vspace, A(2), S(Dv, 1), A(6), B),
            Block::FaultSetup => b!(Fault, A(6), L(Ob, 1), L(Ob, 1), A(3), B),
            Block::FaultMsgWord => b!(Fault, A(1), S(Ob, 1), B),
            Block::FastpathCheck => {
                b!(Fastpath, A(40), L(Ob, 2), L(Ob, 2), L(Ob, 2), A(4), B)
            }
            Block::FastpathXfer => b!(Fastpath, A(16), L(Ob, 4), S(Ob, 4), B),
            Block::FastpathCommit => {
                b!(Fastpath, A(56), M, S(Ob, 4), S(Ob, 4), S(Gl, 2), A(4), B)
            }
            Block::TcbInvoke => b!(TcbOps, A(10), L(Ob, 2), S(Ob, 4), B),
            Block::CNodeCopy => b!(CNodeOps, A(8), L(Ob, 2), S(Ob, 3), A(2), B),
            Block::CNodeDelete => b!(CNodeOps, A(6), L(Ob, 2), S(Ob, 2), B),
            Block::RevokeIter => b!(CNodeOps, A(4), L(Ob, 2), S(Ob, 2), B),
            Block::NtfnSignalOp => b!(NtfnOps, A(4), L(Ob, 2), S(Ob, 2), B),
            Block::NtfnWaitOp => b!(NtfnOps, A(4), L(Ob, 2), S(Ob, 2), B),
        }
    }

    /// Stable index of the block (position in [`Block::ALL`]).
    pub fn index(self) -> usize {
        Block::ALL
            .iter()
            .position(|&b| b == self)
            .expect("block missing from ALL")
    }
}

/// Code layout: the concrete address of every block.
#[derive(Clone, Debug)]
pub struct Layout {
    addr: HashMap<Block, Addr>,
    code_end: Addr,
}

impl Layout {
    /// Lays out [`Block::ALL`] from [`KERNEL_CODE_BASE`], aligning each
    /// function's first block to a cache line (as a linker would).
    pub fn new() -> Layout {
        let mut addr = HashMap::new();
        let mut cur = KERNEL_CODE_BASE;
        let mut last_fn = None;
        for &b in Block::ALL {
            let spec = b.spec();
            if last_fn != Some(spec.func) {
                cur = (cur + 31) & !31;
                last_fn = Some(spec.func);
            }
            addr.insert(b, cur);
            cur += spec.code_bytes();
        }
        Layout {
            addr,
            code_end: cur,
        }
    }

    /// Address of a block's first instruction.
    pub fn addr_of(&self, b: Block) -> Addr {
        *self.addr.get(&b).expect("unknown block")
    }

    /// Total kernel code size in bytes.
    pub fn code_size(&self) -> u32 {
        self.code_end - KERNEL_CODE_BASE
    }

    /// All 32-byte instruction lines occupied by `blocks` (for cache
    /// pinning, §4).
    pub fn code_lines(&self, blocks: &[Block]) -> Vec<Addr> {
        let mut lines = Vec::new();
        for &b in blocks {
            let start = self.addr_of(b);
            let end = start + b.spec().code_bytes();
            let mut line = start & !31;
            while line < end {
                if !lines.contains(&line) {
                    lines.push(line);
                }
                line += 32;
            }
        }
        lines.sort_unstable();
        lines
    }
}

impl Default for Layout {
    fn default() -> Layout {
        Layout::new()
    }
}

/// Address of the stack slot used by the `i`-th stack operand of a block
/// (rotates within the pinned first 256 bytes below the stack top).
pub fn stack_addr(op_index: u32) -> Addr {
    KERNEL_STACK_TOP - KERNEL_STACK_SPAN + 4 * (op_index % (KERNEL_STACK_SPAN / 4))
}

/// Address of the global variable used by the `i`-th global operand of
/// `block` (a deterministic per-block slot within the key data region).
pub fn global_addr(block: Block, op_index: u32) -> Addr {
    let slot = (block.index() as u32 * 7 + op_index) % (KERNEL_GLOBALS_SPAN / 4);
    KERNEL_GLOBALS_BASE + 4 * slot
}

/// The blocks making up the interrupt delivery path — the pinned set of §4
/// ("we selected the interrupt delivery path, along with some commonly
/// accessed memory regions, to be permanently pinned").
pub fn interrupt_path_blocks() -> Vec<Block> {
    vec![
        Block::IrqEntry,
        Block::IrqGet,
        Block::IrqLookup,
        Block::IrqSignal,
        Block::IrqAck,
        Block::IrqSpurious,
        Block::WakeThread,
        Block::DirectSwitch,
        Block::EnqueueThread,
        Block::DequeueThread,
        Block::BitmapSet,
        Block::BitmapClear,
        Block::SchedBitmap,
        Block::SchedPrioScan,
        Block::SchedCommit,
        Block::SchedIdle,
        Block::CtxSwitch,
        Block::PreemptCheck,
        Block::PreemptSave,
        Block::KExitCheck,
        Block::ExitRestore,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_has_a_spec_and_address() {
        let layout = Layout::new();
        for &b in Block::ALL {
            let spec = b.spec();
            assert!(spec.instr_count() > 0, "{b:?} empty");
            let addr = layout.addr_of(b);
            assert!(addr >= KERNEL_CODE_BASE);
            assert_eq!(addr % 4, 0);
        }
    }

    #[test]
    fn blocks_do_not_overlap() {
        let layout = Layout::new();
        let mut spans: Vec<(Addr, Addr)> = Block::ALL
            .iter()
            .map(|&b| {
                let a = layout.addr_of(b);
                (a, a + b.spec().code_bytes())
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping code: {:?}", w);
        }
    }

    #[test]
    fn kernel_code_size_is_tens_of_kib() {
        // The paper's compiled seL4 binary is 36 KiB; our block model
        // should be the same order of magnitude (it models the paths, not
        // every line of C).
        let layout = Layout::new();
        let size = layout.code_size();
        assert!(size > 1024, "suspiciously small kernel: {size}");
        assert!(size < 64 * 1024, "kernel larger than expected: {size}");
    }

    #[test]
    fn scheduler_bitmap_uses_two_loads_two_clz() {
        let spec = Block::SchedBitmap.spec();
        let clz = spec.instrs.iter().filter(|i| matches!(i, Ik::Z)).count();
        let loads = spec
            .instrs
            .iter()
            .filter(|i| matches!(i, Ik::L(D::Gl, _)))
            .count();
        assert_eq!(clz, 2, "§3.2: two CLZ instructions");
        assert_eq!(loads, 2, "§3.2: two loads");
    }

    #[test]
    fn interrupt_path_fits_in_quarter_of_icache() {
        // §4: 118 instruction lines were pinned, fitting in 1/4 of the
        // 16 KiB I-cache (128 lines of one 4 KiB way). Our path must fit
        // the same budget.
        let layout = Layout::new();
        let lines = layout.code_lines(&interrupt_path_blocks());
        assert!(
            lines.len() <= 128,
            "interrupt path needs {} lines, exceeding one lockable way",
            lines.len()
        );
        assert!(lines.len() >= 10, "path suspiciously small");
    }

    #[test]
    fn stack_and_global_addresses_stay_in_pinned_regions() {
        for i in 0..256 {
            let s = stack_addr(i);
            assert!((KERNEL_STACK_TOP - KERNEL_STACK_SPAN..KERNEL_STACK_TOP).contains(&s));
        }
        for &b in Block::ALL {
            for i in 0..8 {
                let g = global_addr(b, i);
                assert!(
                    (KERNEL_GLOBALS_BASE..KERNEL_GLOBALS_BASE + KERNEL_GLOBALS_SPAN).contains(&g)
                );
            }
        }
    }

    #[test]
    fn obj_op_counting() {
        let spec = Block::ResolveLevel.spec();
        assert_eq!(spec.obj_ops(), 3);
        assert_eq!(Block::CaseEp.spec().obj_ops(), 0);
    }

    #[test]
    fn fastpath_is_a_few_hundred_instructions() {
        // §6.1: the fastpath is ~200-250 cycles warm; warm cost is roughly
        // instruction count plus branch costs, so the three fastpath blocks
        // should total in that range.
        let total: u32 = [
            Block::FastpathCheck,
            Block::FastpathXfer,
            Block::FastpathCommit,
        ]
        .iter()
        .map(|b| b.spec().instr_count())
        .sum();
        assert!(
            (120..=220).contains(&total),
            "fastpath block total {total} instructions"
        );
    }
}
