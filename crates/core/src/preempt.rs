//! Preemption points.
//!
//! Interrupts are disabled in hardware throughout kernel execution (§2.1);
//! the only places a pending interrupt can be noticed mid-operation are
//! explicit preemption points. When one fires, the long-running operation
//! returns [`Preempted`] up the (Rust) call stack — the analogue of seL4's
//! C code returning `EXCEPTION_PREEMPTED` up its call stack — with all
//! progress already saved *in the objects being operated on* (incremental
//! consistency). The trapped thread is left in the `Restart` state so that
//! re-executing the system call resumes the operation (§2.1).

/// Marker that a kernel operation was cut short at a preemption point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Preempted;

/// Result type threaded through every preemptible kernel operation.
pub type PreemptResult = Result<(), Preempted>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_propagates() {
        fn inner(fire: bool) -> PreemptResult {
            if fire {
                return Err(Preempted);
            }
            Ok(())
        }
        fn outer(fire: bool) -> PreemptResult {
            inner(fire)?;
            Ok(())
        }
        assert_eq!(outer(false), Ok(()));
        assert_eq!(outer(true), Err(Preempted));
    }
}
