//! Run queues and the three scheduler designs of §3.1–3.2.
//!
//! * [`SchedKind::Lazy`] — the original lazy scheduler (Fig. 2): blocked
//!   threads are left in the run queue; `choose_thread` dequeues them as it
//!   scans, which is unbounded work (§3.1: "pathological cases where the
//!   scheduler must dequeue a large number of blocked threads").
//! * [`SchedKind::Benno`] — Benno scheduling (Fig. 3): the queue holds only
//!   runnable threads; a thread unblocked by IPC that can run immediately
//!   is switched to directly and never enqueued; the displaced thread is
//!   enqueued at preemption time. `choose_thread` is a scan over 256
//!   priorities.
//! * [`SchedKind::BennoBitmap`] — Benno plus the two-level priority bitmap
//!   (§3.2): 256 priorities in 8 buckets of 32; two loads and two CLZ
//!   instructions find the highest runnable priority, removing the scan
//!   loop "altogether".
//!
//! Run queues are intrusive doubly-linked lists through the TCBs
//! ([`crate::tcb::Tcb::sched_next`]/`sched_prev`), so every operation here
//! is O(1) except the scans the paper is about.

use crate::obj::{ObjId, ObjStore};
use crate::NUM_PRIOS;

pub use crate::kernel::SchedKind;

/// The two-level priority bitmap of §3.2: 8 top-level bits, each covering a
/// bucket of 32 priorities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrioBitmap {
    /// Top level: bit `b` set iff bucket `b` has any runnable priority.
    pub top: u8,
    /// One 32-bit word per bucket; bit `p` of word `b` covers priority
    /// `b * 32 + p`.
    pub buckets: [u32; 8],
}

impl PrioBitmap {
    /// Marks `prio` as having at least one queued thread.
    pub fn set(&mut self, prio: u8) {
        let b = (prio / 32) as usize;
        self.buckets[b] |= 1 << (prio % 32);
        self.top |= 1 << b;
    }

    /// Clears `prio` (call when its queue becomes empty).
    pub fn clear(&mut self, prio: u8) {
        let b = (prio / 32) as usize;
        self.buckets[b] &= !(1 << (prio % 32));
        if self.buckets[b] == 0 {
            self.top &= !(1 << b);
        }
    }

    /// Highest priority with a set bit, using two CLZ steps (§3.2: "using
    /// two loads and two CLZ instructions, we can find the highest runnable
    /// priority very efficiently").
    pub fn highest(&self) -> Option<u8> {
        if self.top == 0 {
            return None;
        }
        let bucket = 7 - self.top.leading_zeros() as u8; // 8-bit CLZ
        let word = self.buckets[bucket as usize];
        debug_assert!(word != 0, "top bit set but bucket empty");
        let bit = 31 - word.leading_zeros() as u8;
        Some(bucket * 32 + bit)
    }

    /// Returns `true` if `prio`'s bit is set.
    pub fn is_set(&self, prio: u8) -> bool {
        self.buckets[(prio / 32) as usize] & (1 << (prio % 32)) != 0
    }
}

/// 256 FIFO run queues plus the bitmap.
#[derive(Clone, Debug)]
pub struct RunQueues {
    heads: Vec<Option<ObjId>>,
    tails: Vec<Option<ObjId>>,
    /// Priority bitmap (§3.2); maintained on every queue mutation.
    pub bitmap: PrioBitmap,
    len: u32,
}

impl Default for RunQueues {
    fn default() -> RunQueues {
        RunQueues::new()
    }
}

impl RunQueues {
    /// Overwrites `self` with `src`, reusing the head/tail buffers.
    pub fn copy_from(&mut self, src: &RunQueues) {
        self.heads.clone_from(&src.heads);
        self.tails.clone_from(&src.tails);
        self.bitmap = src.bitmap;
        self.len = src.len;
    }

    /// Creates empty queues.
    pub fn new() -> RunQueues {
        RunQueues {
            heads: vec![None; NUM_PRIOS as usize],
            tails: vec![None; NUM_PRIOS as usize],
            bitmap: PrioBitmap::default(),
            len: 0,
        }
    }

    /// Total queued threads.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` if no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Head of the queue for `prio`.
    pub fn head(&self, prio: u8) -> Option<ObjId> {
        self.heads[prio as usize]
    }

    /// Appends `tcb` to the tail of its priority's queue.
    ///
    /// # Panics
    ///
    /// Panics if the thread is already queued (the §3.1 Benno invariant
    /// machinery never double-enqueues; doing so is a kernel bug).
    pub fn enqueue(&mut self, store: &mut ObjStore, tcb: ObjId) {
        let prio = {
            let t = store.tcb(tcb);
            assert!(!t.in_runqueue, "double enqueue of {:?}", t.name);
            t.prio
        };
        let p = prio as usize;
        let old_tail = self.tails[p];
        {
            let t = store.tcb_mut(tcb);
            t.sched_prev = old_tail;
            t.sched_next = None;
            t.in_runqueue = true;
        }
        match old_tail {
            Some(prev) => store.tcb_mut(prev).sched_next = Some(tcb),
            None => self.heads[p] = Some(tcb),
        }
        self.tails[p] = Some(tcb);
        self.bitmap.set(prio);
        self.len += 1;
    }

    /// Unlinks `tcb` from its queue.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not queued.
    pub fn dequeue(&mut self, store: &mut ObjStore, tcb: ObjId) {
        let (prio, prev, next) = {
            let t = store.tcb(tcb);
            assert!(t.in_runqueue, "dequeue of unqueued {:?}", t.name);
            (t.prio, t.sched_prev, t.sched_next)
        };
        let p = prio as usize;
        match prev {
            Some(pr) => store.tcb_mut(pr).sched_next = next,
            None => self.heads[p] = next,
        }
        match next {
            Some(nx) => store.tcb_mut(nx).sched_prev = prev,
            None => self.tails[p] = prev,
        }
        {
            let t = store.tcb_mut(tcb);
            t.sched_prev = None;
            t.sched_next = None;
            t.in_runqueue = false;
        }
        if self.heads[p].is_none() {
            self.bitmap.clear(prio);
        }
        self.len -= 1;
    }

    /// Fig. 2 — lazy scheduling's `chooseThread`: scan priorities from
    /// highest; dequeue non-runnable threads encountered on the way; return
    /// the first runnable thread (leaving it queued, as in the paper's
    /// pseudo-code). Also returns the number of blocked threads dequeued
    /// (the unbounded work this design suffers from) and the number of
    /// priority levels scanned.
    pub fn choose_lazy(&mut self, store: &mut ObjStore) -> LazyChoice {
        let mut dequeued = 0;
        let mut scanned = 0;
        for prio in (0..NUM_PRIOS as usize).rev() {
            scanned += 1;
            while let Some(head) = self.heads[prio] {
                if store.tcb(head).state.is_runnable() {
                    return LazyChoice {
                        thread: Some(head),
                        dequeued_blocked: dequeued,
                        prios_scanned: scanned,
                    };
                }
                self.dequeue(store, head);
                dequeued += 1;
            }
        }
        LazyChoice {
            thread: None,
            dequeued_blocked: dequeued,
            prios_scanned: scanned,
        }
    }

    /// Fig. 3 — Benno scheduling's `chooseThread`: the queue contains only
    /// runnable threads, so simply return the head of the highest non-empty
    /// priority. Returns the thread and the number of priorities scanned
    /// (the loop the bitmap of §3.2 later removes).
    pub fn choose_benno(&self) -> (Option<ObjId>, u32) {
        let mut scanned = 0;
        for prio in (0..NUM_PRIOS as usize).rev() {
            scanned += 1;
            if let Some(h) = self.heads[prio] {
                return (Some(h), scanned);
            }
        }
        (None, scanned)
    }

    /// §3.2 — bitmap `chooseThread`: two loads and two CLZ instructions; no
    /// loop at all.
    pub fn choose_bitmap(&self) -> Option<ObjId> {
        let prio = self.bitmap.highest()?;
        let head = self.heads[prio as usize];
        debug_assert!(head.is_some(), "bitmap bit set for empty queue");
        head
    }

    /// All queued threads at `prio`, head first (tests / invariants).
    pub fn iter_prio<'a>(
        &'a self,
        store: &'a ObjStore,
        prio: u8,
    ) -> impl Iterator<Item = ObjId> + 'a {
        let mut cur = self.heads[prio as usize];
        std::iter::from_fn(move || {
            let id = cur?;
            cur = store.tcb(id).sched_next;
            Some(id)
        })
    }
}

/// Result of a lazy-scheduler scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LazyChoice {
    /// Chosen thread (`None` → idle).
    pub thread: Option<ObjId>,
    /// Blocked threads dequeued during the scan — the §3.1 pathological
    /// cost.
    pub dequeued_blocked: u32,
    /// Priority levels scanned.
    pub prios_scanned: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::ObjKind;
    use crate::tcb::{Tcb, ThreadState, TCB_SIZE_BITS};

    fn mk_thread(s: &mut ObjStore, i: u32, prio: u8, state: ThreadState) -> ObjId {
        let id = s.insert(
            0x8000_0000 + i * 512,
            TCB_SIZE_BITS,
            ObjKind::Tcb(Tcb::new(&format!("t{i}"), prio)),
        );
        s.tcb_mut(id).state = state;
        id
    }

    #[test]
    fn bitmap_set_clear_highest() {
        let mut b = PrioBitmap::default();
        assert_eq!(b.highest(), None);
        b.set(3);
        b.set(200);
        b.set(67);
        assert_eq!(b.highest(), Some(200));
        b.clear(200);
        assert_eq!(b.highest(), Some(67));
        b.clear(67);
        assert_eq!(b.highest(), Some(3));
        b.clear(3);
        assert_eq!(b.highest(), None);
    }

    #[test]
    fn bitmap_boundaries() {
        let mut b = PrioBitmap::default();
        for p in [0u8, 31, 32, 63, 224, 255] {
            b.set(p);
            assert!(b.is_set(p));
        }
        assert_eq!(b.highest(), Some(255));
        b.clear(255);
        assert_eq!(b.highest(), Some(224));
    }

    #[test]
    fn fifo_order_within_priority() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        let a = mk_thread(&mut s, 0, 5, ThreadState::Running);
        let b = mk_thread(&mut s, 1, 5, ThreadState::Running);
        let c = mk_thread(&mut s, 2, 5, ThreadState::Running);
        q.enqueue(&mut s, a);
        q.enqueue(&mut s, b);
        q.enqueue(&mut s, c);
        let order: Vec<ObjId> = q.iter_prio(&s, 5).collect();
        assert_eq!(order, vec![a, b, c]);
        q.dequeue(&mut s, b); // middle removal
        let order: Vec<ObjId> = q.iter_prio(&s, 5).collect();
        assert_eq!(order, vec![a, c]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn benno_choose_picks_highest() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        let lo = mk_thread(&mut s, 0, 10, ThreadState::Running);
        let hi = mk_thread(&mut s, 1, 200, ThreadState::Running);
        q.enqueue(&mut s, lo);
        q.enqueue(&mut s, hi);
        let (got, scanned) = q.choose_benno();
        assert_eq!(got, Some(hi));
        assert_eq!(scanned, 256 - 200);
        assert_eq!(q.choose_bitmap(), Some(hi));
    }

    #[test]
    fn bitmap_choose_agrees_with_scan() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        for (i, p) in [3u8, 77, 41, 255, 0].iter().enumerate() {
            let t = mk_thread(&mut s, i as u32, *p, ThreadState::Running);
            q.enqueue(&mut s, t);
        }
        assert_eq!(q.choose_bitmap(), q.choose_benno().0);
    }

    #[test]
    fn lazy_choose_dequeues_blocked() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        // Three blocked threads ahead of a runnable one, all at prio 9.
        let blocked: Vec<ObjId> = (0..3)
            .map(|i| mk_thread(&mut s, i, 9, ThreadState::BlockedOnRecv { ep: ObjId(999) }))
            .collect();
        let runnable = mk_thread(&mut s, 3, 9, ThreadState::Running);
        // Lazy scheduling leaves blocked threads queued; emulate that by
        // enqueueing them while blocked (lazy mode's enqueue happened while
        // they were runnable).
        for b in &blocked {
            s.tcb_mut(*b).state = ThreadState::Running;
            q.enqueue(&mut s, *b);
            s.tcb_mut(*b).state = ThreadState::BlockedOnRecv { ep: ObjId(999) };
        }
        q.enqueue(&mut s, runnable);
        let choice = q.choose_lazy(&mut s);
        assert_eq!(choice.thread, Some(runnable));
        assert_eq!(choice.dequeued_blocked, 3);
        // The blocked threads are gone; chosen thread remains queued (Fig. 2
        // returns without dequeuing it).
        assert_eq!(q.len(), 1);
        assert!(s.tcb(runnable).in_runqueue);
        for b in &blocked {
            assert!(!s.tcb(*b).in_runqueue);
        }
    }

    #[test]
    fn lazy_choose_idle_when_all_blocked() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        let b = mk_thread(&mut s, 0, 9, ThreadState::Running);
        q.enqueue(&mut s, b);
        s.tcb_mut(b).state = ThreadState::BlockedOnReply;
        let choice = q.choose_lazy(&mut s);
        assert_eq!(choice.thread, None);
        assert_eq!(choice.dequeued_blocked, 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "double enqueue")]
    fn double_enqueue_panics() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        let t = mk_thread(&mut s, 0, 1, ThreadState::Running);
        q.enqueue(&mut s, t);
        q.enqueue(&mut s, t);
    }

    #[test]
    fn bitmap_tracks_queue_emptiness() {
        let mut s = ObjStore::new();
        let mut q = RunQueues::new();
        let a = mk_thread(&mut s, 0, 40, ThreadState::Running);
        let b = mk_thread(&mut s, 1, 40, ThreadState::Running);
        q.enqueue(&mut s, a);
        q.enqueue(&mut s, b);
        q.dequeue(&mut s, a);
        assert!(q.bitmap.is_set(40), "still one thread at prio 40");
        q.dequeue(&mut s, b);
        assert!(!q.bitmap.is_set(40));
    }
}
