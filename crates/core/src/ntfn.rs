//! Notification objects.
//!
//! A notification is a word of badge bits that senders OR into; waiting
//! threads queue on it in FIFO order (the same intrusive TCB links the
//! endpoint queues use — a thread blocks on at most one object at a time).
//! A signal wakes the head waiter, delivering the accumulated word.
//!
//! The kernel's interrupt delivery uses notifications: an IRQ handler
//! capability binds an interrupt line to a notification, and the kernel's
//! interrupt path signals it — waking the (typically high-priority) driver
//! thread. This is the user-visible end of the interrupt response path
//! whose latency the whole paper is about.

use crate::cap::Badge;
use crate::obj::{ObjId, ObjStore};

/// A notification object.
#[derive(Clone, Debug, Default)]
pub struct Notification {
    /// Accumulated badge bits (zero = nothing pending).
    pub word: u32,
    /// Head of the waiter queue.
    pub head: Option<ObjId>,
    /// Tail of the waiter queue.
    pub tail: Option<ObjId>,
}

impl Notification {
    /// Notification object size in bits (16 bytes).
    pub const SIZE_BITS: u8 = 4;

    /// Creates an empty notification.
    pub fn new() -> Notification {
        Notification::default()
    }

    /// Returns `true` if no thread is waiting.
    pub fn is_idle(&self) -> bool {
        self.head.is_none()
    }
}

/// Result of a signal: whether a waiter must be woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalOutcome {
    /// The head waiter should be made runnable, receiving `word`.
    Wake {
        /// The waiter to wake.
        tcb: ObjId,
        /// The badge word it receives.
        word: u32,
    },
    /// No waiter; the badge bits were accumulated in the word.
    Accumulated,
}

/// Appends `tcb` to the notification's waiter queue (FIFO, intrusive
/// through the TCB's endpoint-queue links).
///
/// # Panics
///
/// Panics if the thread is already queued somewhere.
pub fn ntfn_append(store: &mut ObjStore, ntfn: ObjId, tcb: ObjId) {
    {
        let t = store.tcb(tcb);
        assert!(
            t.queued_on.is_none(),
            "thread {:?} already queued on {:?}",
            t.name,
            t.queued_on
        );
    }
    store.tcb_mut(tcb).queued_on = Some(ntfn);
    let old_tail = {
        let n = store.ntfn_mut(ntfn);
        let t = n.tail;
        n.tail = Some(tcb);
        if n.head.is_none() {
            n.head = Some(tcb);
        }
        t
    };
    if let Some(prev) = old_tail {
        store.tcb_mut(prev).ep_next = Some(tcb);
        store.tcb_mut(tcb).ep_prev = Some(prev);
    }
}

/// Unlinks `tcb` from the waiter queue.
pub fn ntfn_unlink(store: &mut ObjStore, ntfn: ObjId, tcb: ObjId) {
    let (prev, next) = {
        let t = store.tcb_mut(tcb);
        t.queued_on = None;
        (t.ep_prev.take(), t.ep_next.take())
    };
    match prev {
        Some(p) => store.tcb_mut(p).ep_next = next,
        None => store.ntfn_mut(ntfn).head = next,
    }
    match next {
        Some(n) => store.tcb_mut(n).ep_prev = prev,
        None => store.ntfn_mut(ntfn).tail = prev,
    }
}

/// Pops the head waiter, if any.
pub fn ntfn_pop(store: &mut ObjStore, ntfn: ObjId) -> Option<ObjId> {
    let head = store.ntfn(ntfn).head?;
    ntfn_unlink(store, ntfn, head);
    Some(head)
}

/// Iterates the waiter queue (head first).
pub fn ntfn_iter<'a>(store: &'a ObjStore, ntfn: ObjId) -> impl Iterator<Item = ObjId> + 'a {
    let mut cur = store.ntfn(ntfn).head;
    std::iter::from_fn(move || {
        let id = cur?;
        cur = store.tcb(id).ep_next;
        Some(id)
    })
}

/// Signals the notification with `badge`: wakes the head waiter if one is
/// queued, otherwise accumulates the bits (pure state transition; the
/// kernel charges timing and performs the wake).
pub fn signal(store: &mut ObjStore, ntfn: ObjId, badge: Badge) -> SignalOutcome {
    store.ntfn_mut(ntfn).word |= badge.0;
    match ntfn_pop(store, ntfn) {
        Some(tcb) => {
            let word = std::mem::take(&mut store.ntfn_mut(ntfn).word);
            SignalOutcome::Wake { tcb, word }
        }
        None => SignalOutcome::Accumulated,
    }
}

/// A thread attempts to wait: returns `Some(word)` if bits were already
/// pending (no block), otherwise queues the waiter and returns `None`.
pub fn wait(store: &mut ObjStore, ntfn: ObjId, tcb: ObjId) -> Option<u32> {
    {
        let n = store.ntfn_mut(ntfn);
        if n.word != 0 {
            return Some(std::mem::take(&mut n.word));
        }
    }
    ntfn_append(store, ntfn, tcb);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::ObjKind;
    use crate::tcb::{Tcb, TCB_SIZE_BITS};

    fn setup(n_threads: u32) -> (ObjStore, ObjId, Vec<ObjId>) {
        let mut s = ObjStore::new();
        let n = s.insert(
            0x8100_0000,
            Notification::SIZE_BITS,
            ObjKind::Notification(Notification::new()),
        );
        let ts = (0..n_threads)
            .map(|i| {
                s.insert(
                    0x8000_0000 + i * 512,
                    TCB_SIZE_BITS,
                    ObjKind::Tcb(Tcb::new(&format!("w{i}"), 100)),
                )
            })
            .collect();
        (s, n, ts)
    }

    #[test]
    fn signal_then_wait_returns_immediately() {
        let (mut s, n, t) = setup(1);
        assert_eq!(signal(&mut s, n, Badge(0b101)), SignalOutcome::Accumulated);
        assert_eq!(signal(&mut s, n, Badge(0b010)), SignalOutcome::Accumulated);
        assert_eq!(wait(&mut s, n, t[0]), Some(0b111));
        // Word consumed; second wait blocks.
        assert_eq!(wait(&mut s, n, t[0]), None);
    }

    #[test]
    fn wait_then_signal_wakes() {
        let (mut s, n, t) = setup(1);
        assert_eq!(wait(&mut s, n, t[0]), None);
        match signal(&mut s, n, Badge(0x8)) {
            SignalOutcome::Wake { tcb, word } => {
                assert_eq!(tcb, t[0]);
                assert_eq!(word, 0x8);
            }
            other => panic!("expected wake, got {other:?}"),
        }
        assert_eq!(s.ntfn(n).word, 0, "word consumed by the wake");
        assert!(s.ntfn(n).is_idle());
    }

    #[test]
    fn multiple_waiters_wake_in_fifo_order() {
        let (mut s, n, t) = setup(3);
        for &w in &t {
            assert_eq!(wait(&mut s, n, w), None);
        }
        for &expect in &t {
            match signal(&mut s, n, Badge(1)) {
                SignalOutcome::Wake { tcb, .. } => assert_eq!(tcb, expect),
                other => panic!("expected wake, got {other:?}"),
            }
        }
        assert_eq!(signal(&mut s, n, Badge(1)), SignalOutcome::Accumulated);
    }

    #[test]
    fn middle_unlink_keeps_queue_well_formed() {
        let (mut s, n, t) = setup(3);
        for &w in &t {
            wait(&mut s, n, w);
        }
        ntfn_unlink(&mut s, n, t[1]);
        let order: Vec<ObjId> = ntfn_iter(&s, n).collect();
        assert_eq!(order, vec![t[0], t[2]]);
        assert_eq!(s.ntfn(n).tail, Some(t[2]));
    }
}
