//! Untyped memory and object creation (§3.5).
//!
//! seL4 has no in-kernel allocator: userspace holds *untyped* capabilities
//! to regions of physical memory and *retypes* them into kernel objects.
//! The kernel's job is to check (sizes, alignment, non-overlap — the §2.2
//! invariants) and to **clear** the memory so no information leaks.
//!
//! Clearing is the long-running part: "some kernel objects are megabytes in
//! size (e.g. large memory frames on ARM can be up to 16 MiB; capability
//! tables ... can be of arbitrary size)". The paper's restructuring (§3.5):
//!
//! 1. clear **all** object contents *before* any other kernel state is
//!    modified, preempting at 1 KiB multiples, with the progress watermark
//!    stored **in the untyped object itself**;
//! 2. then create the objects and their capabilities in "one short, atomic
//!    pass".
//!
//! The *before* design clears inside the creation path, non-preemptibly —
//! selected by `KernelConfig::preemption_points = false`.

use rt_hw::Addr;

use crate::obj::ObjId;

/// The type a region of untyped memory can be retyped into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RetypeKind {
    /// Thread control block (512 B).
    Tcb,
    /// Endpoint (16 B).
    Endpoint,
    /// Notification (16 B).
    Notification,
    /// CNode with the given radix (16-byte slots).
    CNode {
        /// Radix in bits.
        radix_bits: u8,
    },
    /// Memory frame of the given size (4 KiB small page up to 16 MiB
    /// supersection).
    Frame {
        /// Frame size in bits (12, 16, 20 or 24 on ARMv6).
        size_bits: u8,
    },
    /// Second-level page table.
    PageTable,
    /// Top-level page directory.
    PageDirectory,
    /// ASID pool (legacy VM design only).
    AsidPool,
}

impl RetypeKind {
    /// Object size in bits, including the shadow for paging structures when
    /// `shadow` (the §3.6 shadow-page-table design doubles them).
    pub fn size_bits(self, shadow: bool) -> u8 {
        match self {
            RetypeKind::Tcb => crate::tcb::TCB_SIZE_BITS,
            RetypeKind::Endpoint => crate::ep::Endpoint::SIZE_BITS,
            RetypeKind::Notification => crate::ntfn::Notification::SIZE_BITS,
            RetypeKind::CNode { radix_bits } => crate::cnode::CNode::size_bits(radix_bits),
            RetypeKind::Frame { size_bits } => {
                assert!(
                    matches!(size_bits, 12 | 16 | 20 | 24),
                    "ARMv6 frame sizes are 4 KiB, 64 KiB, 1 MiB, 16 MiB"
                );
                size_bits
            }
            // ARMv6: PT = 1 KiB, doubled to 2 KiB by its shadow (§3.6).
            RetypeKind::PageTable => {
                if shadow {
                    11
                } else {
                    10
                }
            }
            // ARMv6: PD = 16 KiB, doubled to 32 KiB by its shadow (§3.6).
            RetypeKind::PageDirectory => {
                if shadow {
                    15
                } else {
                    14
                }
            }
            RetypeKind::AsidPool => 12,
        }
    }
}

/// An untyped-memory object: a physical range plus a watermark of how much
/// has been consumed by retypes, and the clearing progress of an in-flight
/// (possibly preempted) retype.
#[derive(Clone, Debug)]
pub struct Untyped {
    /// Bytes already handed out to earlier retypes.
    pub watermark: u32,
    /// Clearing progress of the current retype operation: bytes of the
    /// target region already zeroed. This *is* the "progress of this
    /// clearing ... stored within the object itself" (§3.5).
    pub clear_progress: u32,
    /// The region being cleared by the current retype (start set when the
    /// operation first runs; `None` when no retype is in flight).
    pub pending: Option<PendingRetype>,
    /// Objects created from this untyped (for revoke-driven reset).
    pub children: Vec<ObjId>,
}

/// Maximum objects created by a single retype invocation. seL4 bounds its
/// retype fan-out similarly; the bound keeps the *atomic* object-creation
/// pass (§3.5 phase 2) short, as only the clearing phase is preemptible.
pub const MAX_RETYPE_COUNT: u32 = 16;

/// Parameters of an in-flight retype, fixed when the operation starts so a
/// restarted system call continues rather than beginning anew.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PendingRetype {
    /// What is being created.
    pub kind: RetypeKind,
    /// How many objects.
    pub count: u32,
    /// First address of the region being cleared.
    pub region_start: Addr,
    /// Total bytes to clear.
    pub region_len: u32,
}

impl Untyped {
    /// Creates a fresh untyped object.
    pub fn new() -> Untyped {
        Untyped {
            watermark: 0,
            clear_progress: 0,
            pending: None,
            children: Vec::new(),
        }
    }

    /// Returns the aligned start offset for allocating `count` objects of
    /// `1 << size_bits` bytes, or `None` if the untyped is too small.
    pub fn plan(
        &self,
        untyped_base: Addr,
        untyped_size: u32,
        size_bits: u8,
        count: u32,
    ) -> Option<(Addr, u32)> {
        let obj_size = 1u32 << size_bits;
        let free = untyped_base + self.watermark;
        let start = (free + obj_size - 1) & !(obj_size - 1);
        let len = obj_size.checked_mul(count)?;
        let end = start.checked_add(len)?;
        if end > untyped_base + untyped_size {
            return None;
        }
        Some((start, len))
    }
}

impl Default for Untyped {
    fn default() -> Untyped {
        Untyped::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_armv6() {
        assert_eq!(RetypeKind::Tcb.size_bits(true), 9);
        // 32 bytes: 16-byte seL4 endpoint + the §3.4 abort resume state.
        assert_eq!(RetypeKind::Endpoint.size_bits(true), 5);
        assert_eq!(RetypeKind::CNode { radix_bits: 8 }.size_bits(true), 12);
        assert_eq!(RetypeKind::Frame { size_bits: 12 }.size_bits(true), 12);
        // Shadow doubling (§3.6).
        assert_eq!(RetypeKind::PageTable.size_bits(false), 10);
        assert_eq!(RetypeKind::PageTable.size_bits(true), 11);
        assert_eq!(RetypeKind::PageDirectory.size_bits(false), 14);
        assert_eq!(RetypeKind::PageDirectory.size_bits(true), 15);
    }

    #[test]
    #[should_panic(expected = "ARMv6 frame sizes")]
    fn bad_frame_size_panics() {
        let _ = RetypeKind::Frame { size_bits: 13 }.size_bits(false);
    }

    #[test]
    fn plan_aligns_and_bounds() {
        let u = Untyped::new();
        // 64 KiB untyped at an odd-ish base inside its own alignment.
        let (start, len) = u.plan(0x8001_0000, 0x1_0000, 9, 4).expect("fits");
        assert_eq!(start, 0x8001_0000);
        assert_eq!(len, 4 * 512);
        // Too big: 32 frames of 4 KiB = 128 KiB > 64 KiB.
        assert!(u.plan(0x8001_0000, 0x1_0000, 12, 32).is_none());
    }

    #[test]
    fn plan_respects_watermark() {
        let mut u = Untyped::new();
        u.watermark = 100; // unaligned consumption
        let (start, _) = u.plan(0x8001_0000, 0x1_0000, 9, 1).expect("fits");
        assert_eq!(start, 0x8001_0200, "rounded up to 512-byte alignment");
    }
}
