//! The user-level system harness.
//!
//! Experiments need whole systems: threads running "programs" that compute,
//! trap into the kernel, fault, and get interrupted by devices. A
//! [`ThreadScript`] is a small user program — a sequence of [`Action`]s —
//! and [`System`] is the top-level simulation loop: it runs the current
//! thread's next action, lets the kernel handle traps, delivers device
//! interrupts at their programmed cycles, and **re-executes trapped system
//! calls of `Restart`-state threads** — the restartable-system-call
//! mechanism of §2.1 made visible ("simply re-executing the original
//! system call will continue the operation").

use std::collections::{HashMap, VecDeque};

use rt_hw::{Addr, Cycles};

use crate::kernel::Kernel;
use crate::obj::ObjId;
use crate::syscall::Syscall;
use crate::tcb::ThreadState;

/// One step of a user program.
#[derive(Clone, Debug)]
pub enum Action {
    /// Spin for the given number of cycles in userspace.
    Compute(Cycles),
    /// Trap into the kernel with a system call.
    Syscall(Syscall),
    /// Touch an unmapped address (drives the page-fault entry point).
    PageFault(Addr),
    /// Execute an undefined instruction (drives that entry point).
    UndefInstr,
    /// Fill the caches with dirty lines (worst-case preamble, §5.4).
    Pollute,
    /// Suspend this thread.
    Stop,
}

/// A user program: a finite prefix and an optional repeating body.
#[derive(Clone, Debug, Default)]
pub struct ThreadScript {
    queue: VecDeque<Action>,
    repeat: Vec<Action>,
    repeat_ix: usize,
}

impl ThreadScript {
    /// Runs `actions` once, then stops.
    pub fn once(actions: Vec<Action>) -> ThreadScript {
        ThreadScript {
            queue: actions.into(),
            repeat: Vec::new(),
            repeat_ix: 0,
        }
    }

    /// Runs `actions` forever (an event-loop thread).
    pub fn forever(actions: Vec<Action>) -> ThreadScript {
        ThreadScript {
            queue: VecDeque::new(),
            repeat: actions,
            repeat_ix: 0,
        }
    }

    fn next(&mut self) -> Option<Action> {
        if let Some(a) = self.queue.pop_front() {
            return Some(a);
        }
        if self.repeat.is_empty() {
            return None;
        }
        let a = self.repeat[self.repeat_ix].clone();
        self.repeat_ix = (self.repeat_ix + 1) % self.repeat.len();
        Some(a)
    }

    fn push_front(&mut self, a: Action) {
        self.queue.push_front(a);
    }
}

/// Why [`System::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Reached the cycle horizon.
    Horizon,
    /// Every thread finished or blocked forever and no interrupts remain.
    Quiescent,
    /// Step budget exhausted (runaway guard).
    StepLimit,
}

/// The whole simulated system: kernel + user programs.
pub struct System {
    /// The kernel (and through it, the machine).
    pub kernel: Kernel,
    scripts: HashMap<ObjId, ThreadScript>,
    /// Runaway guard on the number of harness steps.
    pub max_steps: u64,
}

impl System {
    /// Wraps a booted kernel.
    pub fn new(kernel: Kernel) -> System {
        System {
            kernel,
            scripts: HashMap::new(),
            max_steps: 10_000_000,
        }
    }

    /// Installs `script` as `tcb`'s user program.
    pub fn set_script(&mut self, tcb: ObjId, script: ThreadScript) {
        self.scripts.insert(tcb, script);
    }

    /// Programs periodic timer ticks (line [`crate::kernel::TIMER_LINE`])
    /// every `period` cycles up to `horizon`, giving round-robin
    /// timeslicing among equal priorities.
    pub fn enable_timer(&mut self, period: rt_hw::Cycles, horizon: rt_hw::Cycles) {
        assert!(period > 0, "timer period must be positive");
        let mut t = self.kernel.machine.now() + period;
        while t < horizon {
            self.kernel
                .machine
                .irq
                .schedule(t, rt_hw::IrqLine(crate::kernel::TIMER_LINE));
            t += period;
        }
    }

    /// Runs until `horizon` cycles (or quiescence). Returns why it stopped.
    pub fn run(&mut self, horizon: Cycles) -> StopReason {
        let mut steps = 0u64;
        loop {
            steps += 1;
            if steps > self.max_steps {
                return StopReason::StepLimit;
            }
            if self.kernel.machine.now() >= horizon {
                return StopReason::Horizon;
            }
            // Pending interrupt while "in userspace": take the IRQ entry.
            if self.kernel.machine.irq.has_pending() {
                self.kernel.handle_interrupt();
                continue;
            }
            if self.kernel.is_idle() {
                // Fast-forward to the next programmed interrupt.
                match self.kernel.machine.irq.next_scheduled() {
                    Some(at) if at < horizon => {
                        let now = self.kernel.machine.now();
                        self.kernel.machine.advance(at.saturating_sub(now).max(1));
                        self.kernel.handle_interrupt();
                        continue;
                    }
                    _ => return StopReason::Quiescent,
                }
            }
            let cur = self.kernel.current();
            // §2.1: a Restart-state thread re-executes its trapped syscall.
            let restart = {
                let t = self.kernel.objs.tcb(cur);
                if t.state == ThreadState::Restart {
                    t.current_syscall.clone()
                } else {
                    None
                }
            };
            if let Some(sys) = restart {
                let _ = self.kernel.handle_syscall(sys);
                continue;
            }
            if self.kernel.objs.tcb(cur).state == ThreadState::Restart {
                // Restarted with no syscall (cancelled IPC): just run on.
                self.kernel.objs.tcb_mut(cur).state = ThreadState::Running;
            }
            let Some(action) = self.scripts.get_mut(&cur).and_then(|s| s.next()) else {
                // No program: park the thread.
                self.suspend(cur);
                continue;
            };
            match action {
                Action::Compute(c) => {
                    // Interrupts can arrive mid-computation; split the
                    // advance at the next programmed IRQ so the entry
                    // happens at the right cycle.
                    let now = self.kernel.machine.now();
                    match self.kernel.machine.irq.next_scheduled() {
                        Some(at) if at > now && at - now < c => {
                            let first = at - now;
                            self.kernel.machine.advance(first);
                            if let Some(s) = self.scripts.get_mut(&cur) {
                                s.push_front(Action::Compute(c - first));
                            }
                            self.kernel.handle_interrupt();
                        }
                        _ => self.kernel.machine.advance(c),
                    }
                }
                Action::Syscall(sys) => {
                    let _ = self.kernel.handle_syscall(sys);
                }
                Action::PageFault(addr) => self.kernel.handle_page_fault(addr),
                Action::UndefInstr => self.kernel.handle_undefined(),
                Action::Pollute => self.kernel.machine.pollute(0x4000_0000),
                Action::Stop => self.suspend(cur),
            }
        }
    }

    fn suspend(&mut self, tcb: ObjId) {
        self.kernel.suspend_thread(tcb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boot_two_threads_one_ep, ep_object};
    use rt_hw::IrqLine;

    #[test]
    fn ping_pong_round_trips() {
        let (mut k, client, server, ep) = boot_two_threads_one_ep();
        k.objs.tcb_mut(server).state = ThreadState::Inactive;
        k.boot_resume(server);
        let mut sys = System::new(k);
        sys.set_script(
            server,
            ThreadScript::once(vec![
                Action::Syscall(Syscall::Recv { cptr: ep }),
                Action::Syscall(Syscall::ReplyRecv {
                    cptr: ep,
                    len: 1,
                    caps: vec![],
                }),
                Action::Stop,
            ]),
        );
        sys.set_script(
            client,
            ThreadScript::once(vec![
                Action::Syscall(Syscall::Call {
                    cptr: ep,
                    len: 1,
                    caps: vec![],
                }),
                Action::Syscall(Syscall::Call {
                    cptr: ep,
                    len: 1,
                    caps: vec![],
                }),
                Action::Stop,
            ]),
        );
        let reason = sys.run(10_000_000);
        assert_ne!(reason, StopReason::StepLimit);
        // The second Call never gets a reply (server stopped), so the
        // client ends blocked or stopped; what matters is progress: at
        // least one full round trip happened.
        assert!(sys.kernel.stats.syscall_entries >= 3);
        crate::invariants::assert_all(&sys.kernel);
    }

    #[test]
    fn timer_round_robins_equal_priorities() {
        // Two compute-bound threads at the same priority; with timeslicing
        // both make progress, interleaved.
        let (mut k, a, b, _) = boot_two_threads_one_ep();
        k.objs.tcb_mut(b).prio = 10; // same priority as `a`
        k.objs.tcb_mut(b).state = ThreadState::Inactive;
        k.boot_resume(b);
        let mut sys = System::new(k);
        // Each thread computes in 10k-cycle slices, 40 of them.
        for t in [a, b] {
            sys.set_script(
                t,
                ThreadScript::once(
                    (0..40)
                        .map(|_| Action::Compute(10_000))
                        .chain(std::iter::once(Action::Stop))
                        .collect(),
                ),
            );
        }
        sys.enable_timer(50_000, 2_000_000);
        let reason = sys.run(2_000_000);
        assert_ne!(reason, StopReason::StepLimit);
        // Both threads finished (reached Stop -> Inactive): without
        // timeslicing, `a` would hog the CPU until done, but both should
        // at least have completed within the horizon; the interleaving is
        // visible through the timer entries.
        assert!(
            sys.kernel.stats.interrupt_entries >= 5,
            "timer ticks delivered: {}",
            sys.kernel.stats.interrupt_entries
        );
        assert_eq!(
            sys.kernel.objs.tcb(a).state,
            ThreadState::Inactive,
            "thread a finished"
        );
        assert_eq!(
            sys.kernel.objs.tcb(b).state,
            ThreadState::Inactive,
            "thread b finished"
        );
        crate::invariants::assert_all(&sys.kernel);
    }

    #[test]
    fn interrupt_wakes_driver_thread() {
        let (mut k, client, server, ep) = boot_two_threads_one_ep();
        let _ = ep_object(&k, client, ep);
        // Make the server a driver: bind IRQ 3 to a notification it waits
        // on, at high priority.
        let ntfn = k.boot_ntfn();
        k.objs.tcb_mut(server).prio = 200;
        k.irq_table.issue(3);
        k.irq_table.bind(3, ntfn, crate::cap::Badge(1));
        k.objs.tcb_mut(server).state = ThreadState::Inactive;
        k.boot_resume(server);
        // Insert a notification cap the server can Wait on.
        let cnode = match k.objs.tcb(server).cspace_root {
            crate::cap::CapType::CNode { obj, .. } => obj,
            _ => unreachable!(),
        };
        crate::cap::insert_cap(
            &mut k.objs,
            crate::cap::SlotRef::new(cnode, 2),
            crate::cap::CapType::Notification {
                obj: ntfn,
                badge: crate::cap::Badge(1),
                rights: crate::cap::Rights::ALL,
            },
            None,
        );
        k.machine.irq.schedule(50_000, IrqLine(3));
        let mut sys = System::new(k);
        sys.set_script(
            server,
            ThreadScript::once(vec![
                Action::Syscall(Syscall::Wait { cptr: 2 }),
                Action::Stop,
            ]),
        );
        sys.set_script(
            client,
            ThreadScript::once(vec![Action::Compute(200_000), Action::Stop]),
        );
        sys.run(1_000_000);
        let log = &sys.kernel.irq_log;
        assert_eq!(log.len(), 1, "one interrupt delivered: {log:?}");
        let r = &log[0];
        assert!(r.kernel_ack >= r.raised);
        let delivered = r.delivered.expect("driver thread ran");
        assert!(delivered >= r.kernel_ack);
        // Response time is bounded: in an idle-ish system it is just the
        // entry + delivery path, well under 100k cycles.
        assert!(
            delivered - r.raised < 100_000,
            "response took {} cycles",
            delivered - r.raised
        );
        crate::invariants::assert_all(&sys.kernel);
    }
}
