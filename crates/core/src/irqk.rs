//! Kernel-side interrupt management.
//!
//! Userspace drivers obtain an IRQ-handler capability (minted from
//! `IrqControl`) and bind it to a notification object; when the line fires,
//! the kernel's interrupt path signals that notification, waking the driver
//! thread. The table is a flat array — the lookup on the interrupt
//! delivery path is O(1), which is what allows the path to be short enough
//! to pin (§4).

use crate::cap::Badge;
use crate::obj::ObjId;

/// Number of interrupt lines (matches `rt_hw::irq::NUM_LINES`).
pub const NUM_IRQ_LINES: usize = 32;

/// Per-line binding of an IRQ to a notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IrqBinding {
    /// Notification to signal.
    pub ntfn: ObjId,
    /// Badge OR-ed into the notification word.
    pub badge: Badge,
}

/// The kernel's IRQ dispatch table.
#[derive(Clone, Debug, Default, Hash)]
pub struct IrqTable {
    bindings: [Option<IrqBinding>; NUM_IRQ_LINES],
    /// Lines for which an IrqHandler cap has been issued (at most one each).
    issued: [bool; NUM_IRQ_LINES],
}

impl IrqTable {
    /// Creates an empty table.
    pub fn new() -> IrqTable {
        IrqTable::default()
    }

    /// Marks a handler cap as issued for `line`. Returns `false` if one
    /// already exists (IrqControl refuses duplicates).
    pub fn issue(&mut self, line: u8) -> bool {
        let l = line as usize;
        if self.issued[l] {
            return false;
        }
        self.issued[l] = true;
        true
    }

    /// Returns the handler cap for `line` when deleted, allowing re-issue.
    pub fn retire(&mut self, line: u8) {
        let l = line as usize;
        self.issued[l] = false;
        self.bindings[l] = None;
    }

    /// Binds `line` to a notification.
    pub fn bind(&mut self, line: u8, ntfn: ObjId, badge: Badge) {
        self.bindings[line as usize] = Some(IrqBinding { ntfn, badge });
    }

    /// Removes the binding for `line`.
    pub fn unbind(&mut self, line: u8) {
        self.bindings[line as usize] = None;
    }

    /// The binding for `line`, if any — the single load on the interrupt
    /// delivery path.
    pub fn lookup(&self, line: u8) -> Option<IrqBinding> {
        self.bindings[line as usize]
    }

    /// Drops every binding that targets `ntfn` (called when the
    /// notification object is destroyed so the table never dangles).
    pub fn unbind_ntfn(&mut self, ntfn: ObjId) {
        for b in &mut self.bindings {
            if b.map(|x| x.ntfn) == Some(ntfn) {
                *b = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_bind_lookup() {
        let mut t = IrqTable::new();
        assert!(t.issue(5));
        assert!(!t.issue(5), "duplicate handler refused");
        t.bind(5, ObjId(9), Badge(0x10));
        assert_eq!(
            t.lookup(5),
            Some(IrqBinding {
                ntfn: ObjId(9),
                badge: Badge(0x10)
            })
        );
        assert_eq!(t.lookup(6), None);
    }

    #[test]
    fn retire_allows_reissue() {
        let mut t = IrqTable::new();
        assert!(t.issue(3));
        t.bind(3, ObjId(1), Badge(1));
        t.retire(3);
        assert_eq!(t.lookup(3), None);
        assert!(t.issue(3));
    }

    #[test]
    fn unbind_ntfn_sweeps_all_lines() {
        let mut t = IrqTable::new();
        t.bind(1, ObjId(7), Badge(1));
        t.bind(2, ObjId(7), Badge(2));
        t.bind(3, ObjId(8), Badge(4));
        t.unbind_ntfn(ObjId(7));
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(2), None);
        assert!(t.lookup(3).is_some());
    }
}
