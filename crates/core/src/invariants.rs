//! Executable kernel invariants (§2.2).
//!
//! seL4's proof maintains "hundreds of invariants and lemmas ... across all
//! seL4 operations"; every added preemption point obliges the verifier to
//! show the invariants still hold at the intermediate states. We cannot
//! machine-check a proof here, but we can make the invariants *executable*
//! and check them at every preemption point and kernel exit in tests —
//! a preemption point that leaves the kernel inconsistent fails the suite.
//!
//! Implemented checks, with their §2.2 categories:
//!
//! * **well-formed data structures** — run queues and endpoint queues are
//!   proper doubly-linked lists (no cycles, agreeing back-pointers);
//! * **object alignment** — "all objects in seL4 are aligned to their
//!   size, and do not overlap in memory with any other objects";
//! * **algorithmic invariants** — the Benno invariant ("all threads on the
//!   scheduler's run queue must be in the runnable state", §3.1), the
//!   bitmap agreement ("the scheduler's bitmap precisely reflects the
//!   state of the run queues", §3.2), and the weaker lazy-scheduling
//!   invariant ("all runnable threads are either on the run queue or
//!   currently executing");
//! * **book-keeping invariants** — CDT parent/child agreement, endpoint
//!   queue membership matching thread states, shadow back-pointers naming
//!   real frame caps that agree with the page tables (§3.6).

use std::collections::{HashMap, HashSet};

use crate::cap::{CapType, SlotRef, SpaceRef};
use crate::kernel::{Kernel, SchedKind, VmKind};
use crate::obj::{ObjId, ObjKind};
use crate::tcb::ThreadState;
use crate::vspace::{PdEntry, PtEntry};

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant (short name).
    pub invariant: &'static str,
    /// Details.
    pub detail: String,
}

/// Runs every applicable invariant; returns all violations (empty = OK).
pub fn check_all(k: &Kernel) -> Vec<Violation> {
    let mut v = Vec::new();
    check_alignment_and_overlap(k, &mut v);
    check_run_queues(k, &mut v);
    check_scheduler_invariant(k, &mut v);
    check_bitmap(k, &mut v);
    check_ep_queues(k, &mut v);
    check_cdt(k, &mut v);
    if k.config.vm == VmKind::ShadowPt {
        check_shadow_backpointers(k, &mut v);
    }
    check_smp(k, &mut v);
    v
}

/// Panics with a readable report if any invariant is violated (the test
/// suites' entry point).
#[track_caller]
pub fn assert_all(k: &Kernel) {
    let v = check_all(k);
    assert!(
        v.is_empty(),
        "kernel invariant violations:\n{}",
        v.iter()
            .map(|x| format!("  [{}] {}", x.invariant, x.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn check_alignment_and_overlap(k: &Kernel, out: &mut Vec<Violation>) {
    // Untyped objects legitimately *contain* the objects retyped from
    // them (that is what retype means); they are excluded from the
    // pairwise-disjointness check, which then covers all concrete objects.
    let mut spans: Vec<(u32, u32, ObjId)> = Vec::new();
    for (id, o) in k.objs.iter() {
        if o.base % o.size() != 0 {
            out.push(Violation {
                invariant: "object-alignment",
                detail: format!("{id:?} at {:#x} not aligned to {:#x}", o.base, o.size()),
            });
        }
        if !matches!(o.kind, ObjKind::Untyped(_)) {
            spans.push((o.base, o.end(), id));
        }
    }
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[0].1 > w[1].0 {
            out.push(Violation {
                invariant: "object-overlap",
                detail: format!("{:?} overlaps {:?}", w[0].2, w[1].2),
            });
        }
    }
    // Retyped objects must lie fully inside their untyped parent.
    for (id, o) in k.objs.iter() {
        if let ObjKind::Untyped(u) = &o.kind {
            for &c in &u.children {
                if !k.objs.is_live(c) {
                    continue;
                }
                let co = k.objs.get(c);
                if co.base < o.base || co.end() > o.end() {
                    out.push(Violation {
                        invariant: "untyped-contains-children",
                        detail: format!("{c:?} escapes its untyped parent {id:?}"),
                    });
                }
            }
        }
    }
}

fn check_run_queues(k: &Kernel, out: &mut Vec<Violation>) {
    // SMP: every core's run queues must be well-formed, and a queued
    // thread must be queued on its affinity core (single-core: one loop
    // iteration, affinity always 0 — identical to the historical check).
    let mut seen = HashSet::new();
    for core in 0..k.n_cores() {
        let queues = k.core_queues(core);
        for prio in 0..=255u8 {
            let mut cur = queues.head(prio);
            let mut prev: Option<ObjId> = None;
            let mut steps = 0;
            while let Some(t) = cur {
                if !seen.insert(t) {
                    out.push(Violation {
                        invariant: "runqueue-well-formed",
                        detail: format!("{t:?} linked twice"),
                    });
                    return;
                }
                let tcb = k.objs.tcb(t);
                if tcb.sched_prev != prev {
                    out.push(Violation {
                        invariant: "runqueue-well-formed",
                        detail: format!("{:?} back-pointer disagrees", tcb.name),
                    });
                }
                if !tcb.in_runqueue {
                    out.push(Violation {
                        invariant: "runqueue-well-formed",
                        detail: format!("{:?} linked but !in_runqueue", tcb.name),
                    });
                }
                if tcb.prio != prio {
                    out.push(Violation {
                        invariant: "runqueue-well-formed",
                        detail: format!(
                            "{:?} at prio {} queued under {}",
                            tcb.name, tcb.prio, prio
                        ),
                    });
                }
                if tcb.affinity != core {
                    out.push(Violation {
                        invariant: "queued-on-affinity-core",
                        detail: format!(
                            "{:?} with affinity {} queued on core {}",
                            tcb.name, tcb.affinity, core
                        ),
                    });
                }
                prev = cur;
                cur = tcb.sched_next;
                steps += 1;
                if steps > crate::MAX_THREADS {
                    out.push(Violation {
                        invariant: "runqueue-well-formed",
                        detail: format!("cycle in run queue at prio {prio}"),
                    });
                    return;
                }
            }
        }
    }
    // No thread claims membership without being linked.
    for (id, o) in k.objs.iter() {
        if let ObjKind::Tcb(t) = &o.kind {
            if t.in_runqueue && !seen.contains(&id) {
                out.push(Violation {
                    invariant: "runqueue-well-formed",
                    detail: format!("{:?} claims in_runqueue but is not linked", t.name),
                });
            }
        }
    }
}

/// §3.1: under Benno scheduling every queued thread is runnable; under any
/// scheduler every runnable thread is queued or current (or idle).
fn check_scheduler_invariant(k: &Kernel, out: &mut Vec<Violation>) {
    let benno = matches!(k.config.sched, SchedKind::Benno | SchedKind::BennoBitmap);
    let currents: HashSet<ObjId> = (0..k.n_cores()).map(|c| k.core_current(c)).collect();
    for (id, o) in k.objs.iter() {
        if let ObjKind::Tcb(t) = &o.kind {
            if benno && t.in_runqueue && !t.state.is_runnable() {
                out.push(Violation {
                    invariant: "benno-queued-implies-runnable",
                    detail: format!("{:?} queued in state {:?}", t.name, t.state),
                });
            }
            if t.state.is_runnable() && !t.in_runqueue && !currents.contains(&id) {
                out.push(Violation {
                    invariant: "runnable-queued-or-current",
                    detail: format!("{:?} runnable but neither queued nor current", t.name),
                });
            }
        }
    }
}

/// §3.2: "the scheduler's bitmap precisely reflects the state of the run
/// queues" (only required, and only maintained, in bitmap mode).
fn check_bitmap(k: &Kernel, out: &mut Vec<Violation>) {
    if k.config.sched != SchedKind::BennoBitmap {
        return;
    }
    for core in 0..k.n_cores() {
        let queues = k.core_queues(core);
        for prio in 0..=255u8 {
            let queued = queues.head(prio).is_some();
            let bit = queues.bitmap.is_set(prio);
            if queued != bit {
                out.push(Violation {
                    invariant: "bitmap-reflects-queues",
                    detail: format!("core {core} prio {prio}: queued={queued} bit={bit}"),
                });
            }
        }
    }
}

fn check_ep_queues(k: &Kernel, out: &mut Vec<Violation>) {
    for (ep_id, o) in k.objs.iter() {
        let ObjKind::Endpoint(e) = &o.kind else {
            continue;
        };
        let mut cur = e.head;
        let mut prev: Option<ObjId> = None;
        let mut last = None;
        let mut steps = 0;
        while let Some(t) = cur {
            let tcb = k.objs.tcb(t);
            if tcb.ep_prev != prev {
                out.push(Violation {
                    invariant: "epqueue-well-formed",
                    detail: format!("{:?} ep back-pointer disagrees", tcb.name),
                });
            }
            if !tcb.state.blocked_on_ep(ep_id) {
                out.push(Violation {
                    invariant: "epqueue-members-blocked",
                    detail: format!(
                        "{:?} queued on {ep_id:?} in state {:?}",
                        tcb.name, tcb.state
                    ),
                });
            }
            last = cur;
            prev = cur;
            cur = tcb.ep_next;
            steps += 1;
            if steps > crate::MAX_THREADS {
                out.push(Violation {
                    invariant: "epqueue-well-formed",
                    detail: format!("cycle in queue of {ep_id:?}"),
                });
                return;
            }
        }
        if e.tail != last {
            out.push(Violation {
                invariant: "epqueue-well-formed",
                detail: format!("{ep_id:?} tail pointer disagrees"),
            });
        }
        if e.head.is_some() && e.state == crate::ep::EpState::Idle {
            out.push(Violation {
                invariant: "epqueue-well-formed",
                detail: format!("{ep_id:?} has waiters but state Idle"),
            });
        }
    }
    // Notification waiter queues: well-formed and in agreement with the
    // waiters' states.
    for (ntfn_id, o) in k.objs.iter() {
        let ObjKind::Notification(n) = &o.kind else {
            continue;
        };
        let mut cur = n.head;
        let mut prev: Option<ObjId> = None;
        let mut last = None;
        let mut steps = 0;
        while let Some(t) = cur {
            let tcb = k.objs.tcb(t);
            if tcb.ep_prev != prev {
                out.push(Violation {
                    invariant: "ntfnqueue-well-formed",
                    detail: format!("{:?} back-pointer disagrees", tcb.name),
                });
            }
            if !matches!(tcb.state, ThreadState::BlockedOnNotification { ntfn } if ntfn == ntfn_id)
            {
                out.push(Violation {
                    invariant: "ntfnqueue-members-blocked",
                    detail: format!(
                        "{:?} queued on {ntfn_id:?} in state {:?}",
                        tcb.name, tcb.state
                    ),
                });
            }
            last = cur;
            prev = cur;
            cur = tcb.ep_next;
            steps += 1;
            if steps > crate::MAX_THREADS {
                out.push(Violation {
                    invariant: "ntfnqueue-well-formed",
                    detail: format!("cycle in queue of {ntfn_id:?}"),
                });
                return;
            }
        }
        if n.tail != last {
            out.push(Violation {
                invariant: "ntfnqueue-well-formed",
                detail: format!("{ntfn_id:?} tail pointer disagrees"),
            });
        }
        if n.head.is_some() && n.word != 0 {
            out.push(Violation {
                invariant: "ntfn-word-or-waiters",
                detail: format!("{ntfn_id:?} has both pending bits and waiters"),
            });
        }
    }
    // Conversely, every blocked thread is linked into the queue it claims.
    for (id, o) in k.objs.iter() {
        if let ObjKind::Tcb(t) = &o.kind {
            match t.state {
                ThreadState::BlockedOnSend { ep, .. } | ThreadState::BlockedOnRecv { ep } => {
                    let found = crate::ep::ep_iter(&k.objs, ep).any(|x| x == id);
                    if !found {
                        out.push(Violation {
                            invariant: "blocked-implies-queued",
                            detail: format!("{:?} blocked on {ep:?} but not in its queue", t.name),
                        });
                    }
                }
                ThreadState::BlockedOnNotification { ntfn } => {
                    let found = crate::ntfn::ntfn_iter(&k.objs, ntfn).any(|x| x == id);
                    if !found {
                        out.push(Violation {
                            invariant: "blocked-implies-queued",
                            detail: format!(
                                "{:?} blocked on {ntfn:?} but not in its queue",
                                t.name
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_cdt(k: &Kernel, out: &mut Vec<Violation>) {
    // parent(child) and children(parent) must agree.
    let mut all_slots: Vec<(SlotRef, Option<SlotRef>, Vec<SlotRef>)> = Vec::new();
    for (id, o) in k.objs.iter() {
        if let ObjKind::CNode(cn) = &o.kind {
            for i in 0..cn.num_slots() {
                let s = cn.slot(i);
                if !s.cap.is_null() || !s.children.is_empty() {
                    all_slots.push((SlotRef::new(id, i), s.parent, s.children.clone()));
                }
            }
        }
    }
    let parents: HashMap<SlotRef, Option<SlotRef>> =
        all_slots.iter().map(|(s, p, _)| (*s, *p)).collect();
    for (slot, _parent, children) in &all_slots {
        for c in children {
            match parents.get(c) {
                Some(Some(p)) if p == slot => {}
                other => out.push(Violation {
                    invariant: "cdt-links-agree",
                    detail: format!("{slot:?} lists child {c:?}, whose parent is {other:?}"),
                }),
            }
        }
    }
    for (slot, parent, _) in &all_slots {
        if let Some(p) = parent {
            let ok = all_slots
                .iter()
                .any(|(s, _, ch)| s == p && ch.contains(slot));
            if !ok {
                out.push(Violation {
                    invariant: "cdt-links-agree",
                    detail: format!("{slot:?} claims parent {p:?}, which does not list it"),
                });
            }
        }
    }
    // No cap references a dead object.
    for (slot, _, _) in &all_slots {
        let cap = &crate::cap::read_slot(&k.objs, *slot).cap;
        if let Some(obj) = cap.object() {
            if !k.objs.is_live(obj) {
                out.push(Violation {
                    invariant: "caps-reference-live-objects",
                    detail: format!("{slot:?} references dead {obj:?}"),
                });
            }
        }
    }
}

/// §3.6 (shadow design): every mapped PTE has a shadow back-pointer naming
/// a live frame cap whose mapping agrees, and every mapped frame cap's
/// target PTE points back at its frame — no dangling in either direction.
fn check_shadow_backpointers(k: &Kernel, out: &mut Vec<Violation>) {
    for (pt_id, o) in k.objs.iter() {
        let ObjKind::PageTable(pt) = &o.kind else {
            continue;
        };
        for (i, e) in pt.entries.iter().enumerate() {
            match e {
                PtEntry::Invalid => {
                    if pt.shadow[i].is_some() {
                        out.push(Violation {
                            invariant: "shadow-agrees",
                            detail: format!("{pt_id:?}[{i}] invalid but shadow set"),
                        });
                    }
                }
                PtEntry::Page { frame } => {
                    let Some(slot) = pt.shadow[i] else {
                        out.push(Violation {
                            invariant: "shadow-agrees",
                            detail: format!("{pt_id:?}[{i}] mapped but no shadow back-pointer"),
                        });
                        continue;
                    };
                    if !k.objs.is_live(slot.cnode) {
                        out.push(Violation {
                            invariant: "shadow-agrees",
                            detail: format!("{pt_id:?}[{i}] shadow names a dead CNode"),
                        });
                        continue;
                    }
                    match &crate::cap::read_slot(&k.objs, slot).cap {
                        CapType::Frame {
                            obj,
                            mapping: Some(m),
                            ..
                        } if obj == frame => {
                            if crate::vspace::pt_index(m.vaddr) != i as u32 {
                                out.push(Violation {
                                    invariant: "shadow-agrees",
                                    detail: format!(
                                        "{pt_id:?}[{i}] cap mapping vaddr {:#x} disagrees",
                                        m.vaddr
                                    ),
                                });
                            }
                        }
                        other => out.push(Violation {
                            invariant: "shadow-agrees",
                            detail: format!("{pt_id:?}[{i}] shadow names {other:?}"),
                        }),
                    }
                }
            }
        }
    }
    // Frame caps that claim a direct-PD mapping must be reachable from the
    // page tables (no dangling Pd references — the property the shadow
    // design buys with eager updates).
    for (id, o) in k.objs.iter() {
        if let ObjKind::CNode(cn) = &o.kind {
            for i in 0..cn.num_slots() {
                if let CapType::Frame {
                    obj,
                    mapping: Some(m),
                    ..
                } = &cn.slot(i).cap
                {
                    if let SpaceRef::Pd(pd) = m.space {
                        if !k.objs.is_live(pd) {
                            out.push(Violation {
                                invariant: "no-dangling-space-refs",
                                detail: format!(
                                    "frame cap at {:?}[{i}] maps into dead PD {pd:?}",
                                    id
                                ),
                            });
                            continue;
                        }
                        let pdi = crate::vspace::pd_index(m.vaddr);
                        let entry = k.objs.pd(pd).entries[pdi as usize];
                        let ok = match entry {
                            PdEntry::Section { frame } => frame == *obj,
                            PdEntry::Table { pt } => matches!(
                                k.objs.pt(pt).entries
                                    [crate::vspace::pt_index(m.vaddr) as usize],
                                PtEntry::Page { frame } if frame == *obj
                            ),
                            _ => false,
                        };
                        if !ok {
                            out.push(Violation {
                                invariant: "no-dangling-space-refs",
                                detail: format!(
                                    "frame cap at {id:?}[{i}] mapping not present in tables"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// SMP progress + bookkeeping invariants (DESIGN.md §14). The key one is
/// the lost-wakeup catcher: a core sitting in the idle thread with
/// runnable work queued must have a reschedule IPI pending — every path
/// that queues work on a remote core sends one, and servicing it forces
/// `ChooseNew`. A dropped IPI (the seeded `LostIpi` bug) leaves the core
/// idle with work queued and nothing pending: exactly this violation.
fn check_smp(k: &Kernel, out: &mut Vec<Violation>) {
    let Some(smp) = k.smp_state() else {
        return;
    };
    if smp.n_cores <= 1 {
        return;
    }
    for core in 0..smp.n_cores {
        let queues = k.core_queues(core);
        let has_work = (0..=255u8).any(|p| queues.head(p).is_some());
        let idle = k.core_current(core) == k.idle_thread();
        let resched_pending = k
            .core_irq(core)
            .is_pending(rt_hw::IrqLine(crate::smp::IPI_RESCHED_LINE));
        let will_choose = k.core_sched_action(core) != crate::kernel::SchedAction::ResumeCurrent;
        if has_work && idle && !resched_pending && !will_choose {
            out.push(Violation {
                invariant: "smp-idle-core-kicked",
                detail: format!(
                    "core {core} idles with runnable work queued and no \
                     reschedule IPI pending (lost wakeup)"
                ),
            });
        }
    }
    if smp.shootdown.completed > smp.shootdown.initiated {
        out.push(Violation {
            invariant: "shootdown-counts-agree",
            detail: format!(
                "completed {} > initiated {}",
                smp.shootdown.completed, smp.shootdown.initiated
            ),
        });
    }
    for (c, pending) in smp.shootdown.pending.iter().enumerate() {
        if c as u8 == k.cur_core() {
            continue; // the active core may be mid-service
        }
        if *pending
            && !k
                .core_irq(c as u8)
                .is_pending(rt_hw::IrqLine(crate::smp::IPI_SHOOTDOWN_LINE))
        {
            out.push(Violation {
                invariant: "shootdown-ipi-pending",
                detail: format!("core {c} marked pending but no shootdown IPI on its line"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::boot_two_threads_one_ep;

    #[test]
    fn fresh_boot_satisfies_all_invariants() {
        let (k, _, _, _) = boot_two_threads_one_ep();
        assert_all(&k);
    }

    #[test]
    fn broken_bitmap_detected() {
        let (mut k, _, server, _) = boot_two_threads_one_ep();
        // Enqueue the server but corrupt the bitmap.
        k.objs.tcb_mut(server).state = ThreadState::Running;
        k.queues.enqueue(&mut k.objs, server);
        k.queues.bitmap.clear(k.objs.tcb(server).prio);
        let v = check_all(&k);
        assert!(v.iter().any(|x| x.invariant == "bitmap-reflects-queues"));
    }

    #[test]
    fn benno_invariant_detects_blocked_queued_thread() {
        let (mut k, _, server, _) = boot_two_threads_one_ep();
        k.objs.tcb_mut(server).state = ThreadState::Running;
        k.queues.enqueue(&mut k.objs, server);
        // Now the thread blocks while still queued — legal under lazy
        // scheduling, a violation under Benno.
        k.objs.tcb_mut(server).state = ThreadState::BlockedOnReply;
        let v = check_all(&k);
        assert!(
            v.iter()
                .any(|x| x.invariant == "benno-queued-implies-runnable"),
            "got {v:?}"
        );
    }

    #[test]
    fn dangling_cap_detected() {
        let (mut k, _c, _s, _) = boot_two_threads_one_ep();
        // Destroy the endpoint object behind cptr 1 without deleting the cap.
        let ep = crate::testutil::ep_object(&k, k.current(), 1);
        k.objs.remove(ep);
        let v = check_all(&k);
        assert!(v
            .iter()
            .any(|x| x.invariant == "caps-reference-live-objects"));
    }
}
