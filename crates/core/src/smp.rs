//! SMP kernel state: per-core scheduler slots, IPIs, the big kernel
//! lock, and TLB shootdown (DESIGN.md §14).
//!
//! The kernel multiplexes one [`crate::kernel::Kernel`] across N cores
//! the same way `rt_hw` multiplexes the machine: the *active* core's
//! scheduler state lives in the kernel's existing fields (`queues`,
//! `cur`, `sched_action`) and every parked core's state lives in a
//! [`CoreSlot`]. [`crate::kernel::Kernel::switch_core`] exchanges them
//! in O(1). A kernel with `smp == None` — or with `n_cores == 1` — is
//! bit-identical to the pre-SMP kernel: every SMP charge and every SMP
//! state transition below is gated on `n_cores > 1`, mirroring seL4's
//! SMP build compiling the lock and IPIs out of uniprocessor kernels.
//!
//! Components:
//!
//! * **Per-core Benno queues** — each core owns a full
//!   [`RunQueues`] (heads, tails, priority bitmap). Wakes route by the
//!   target thread's affinity; cross-core wakes enqueue remotely and
//!   kick the target with a reschedule IPI.
//! * **IPIs** — two dedicated interrupt lines
//!   ([`IPI_RESCHED_LINE`], [`IPI_SHOOTDOWN_LINE`]) raised directly on
//!   the target core's interrupt-controller interface, stamped with the
//!   *target's* clock. They are auto-EOI: the service path acks the
//!   line (the EOI) and never masks it, unlike the
//!   mask-until-driver-ack device protocol.
//! * **Big kernel lock** — every kernel entry acquires the lock,
//!   every exit releases it. Hold intervals are recorded
//!   ([`LockHold`]), and an entry overlapping another core's most
//!   recent hold charges the overlap as lock-wait: a first-class
//!   latency component, reported per core and bounded by
//!   `(K-1) * hold_cap` per entry. Per-core clocks are independent, so
//!   the overlap is computed with saturating arithmetic and capped at
//!   both the hold's true length and [`BigLock::hold_cap`] (the modeled
//!   "holder releases at its next preemption point" horizon).
//! * **TLB shootdown** — the local TLB-flush path broadcasts a
//!   shootdown IPI to every other core; each target invalidates its
//!   TLB (charging the same `TlbFlush` block locally) and marks the
//!   shootdown complete.

use rt_hw::smp::{CoreCtx, IrqRouting};
use rt_hw::Cycles;

use crate::kernel::SchedAction;
use crate::obj::ObjId;
use crate::sched::RunQueues;

/// IPI line for cross-core reschedule kicks.
pub const IPI_RESCHED_LINE: u8 = 30;
/// IPI line for TLB-shootdown requests.
pub const IPI_SHOOTDOWN_LINE: u8 = 29;

/// Default [`BigLock::hold_cap`]: the modeled upper bound on how long a
/// contended hold delays a waiter before the holder reaches a
/// preemption point or exits. Sized above every per-entry WCET the
/// workspace computes so the cap itself never truncates a real hold's
/// overlap in the scenarios the tests drive.
pub const DEFAULT_LOCK_HOLD_CAP: Cycles = 50_000;

/// Capacity of the rolling hold-interval log.
const HOLD_LOG_CAP: usize = 64;

/// One parked core's scheduler state (the active core's lives in the
/// kernel's own fields; its slot holds the previously swapped-out
/// placeholder and is never read while the core is active).
#[derive(Clone, Debug)]
pub struct CoreSlot {
    /// Parked hardware state (L1s, predictor, IRQ interface, PMU,
    /// accounts, trace).
    pub ctx: CoreCtx,
    /// Parked per-core run queues + priority bitmap.
    pub queues: RunQueues,
    /// Parked current thread.
    pub cur: ObjId,
    /// Parked pending scheduling decision.
    pub sched_action: SchedAction,
}

/// One recorded big-lock hold interval, in the holder's own clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockHold {
    /// Core that held the lock.
    pub core: u8,
    /// Cycle the hold began (kernel entry, after any lock-wait).
    pub start: Cycles,
    /// Cycle the hold ended (kernel exit).
    pub end: Cycles,
}

/// The big kernel lock's bookkeeping: recorded hold intervals and
/// per-core accumulated lock-wait.
#[derive(Clone, Debug)]
pub struct BigLock {
    /// Each core's most recent completed hold (the overlap source for
    /// other cores' entries).
    pub last_hold: Vec<Option<LockHold>>,
    /// Rolling log of completed holds (capacity `HOLD_LOG_CAP`).
    pub hold_log: Vec<LockHold>,
    /// Per-core lock-wait cycles charged so far — the first-class
    /// latency bucket SMP reports surface.
    pub wait_cycles: Vec<Cycles>,
    /// Model cap on the overlap charged per other core per entry; see
    /// the module docs and [`DEFAULT_LOCK_HOLD_CAP`].
    pub hold_cap: Cycles,
    /// Per-core start cycle of the hold currently in progress.
    entered_at: Vec<Option<Cycles>>,
    /// Next rolling-log slot to overwrite once the log is full.
    hold_log_next: usize,
}

impl BigLock {
    fn new(n: usize) -> BigLock {
        BigLock {
            last_hold: vec![None; n],
            hold_log: Vec::new(),
            wait_cycles: vec![0; n],
            hold_cap: DEFAULT_LOCK_HOLD_CAP,
            entered_at: vec![None; n],
            hold_log_next: 0,
        }
    }

    /// Chargeable lock-wait for an entry on `core` at local cycle
    /// `now`: the overlap with every other core's most recent hold,
    /// each capped at the hold's length and at `hold_cap`. Bounded by
    /// `(n_cores - 1) * hold_cap` by construction.
    pub fn wait_for_entry(&self, core: u8, now: Cycles) -> Cycles {
        let mut wait = 0;
        for (o, h) in self.last_hold.iter().enumerate() {
            if o == core as usize {
                continue;
            }
            if let Some(h) = h {
                wait += h
                    .end
                    .saturating_sub(now)
                    .min(h.end - h.start)
                    .min(self.hold_cap);
            }
        }
        wait
    }

    /// Marks the hold on `core` as started at `now`.
    pub(crate) fn enter(&mut self, core: u8, now: Cycles) {
        self.entered_at[core as usize] = Some(now);
    }

    /// Completes the hold on `core` at `now`, recording the interval.
    pub(crate) fn exit(&mut self, core: u8, now: Cycles) {
        let Some(start) = self.entered_at[core as usize].take() else {
            return;
        };
        let hold = LockHold {
            core,
            start,
            end: now,
        };
        self.last_hold[core as usize] = Some(hold);
        if self.hold_log.len() < HOLD_LOG_CAP {
            self.hold_log.push(hold);
        } else {
            self.hold_log[self.hold_log_next] = hold;
            self.hold_log_next = (self.hold_log_next + 1) % HOLD_LOG_CAP;
        }
    }
}

/// TLB-shootdown progress tracking.
#[derive(Clone, Debug)]
pub struct Shootdown {
    /// Shootdown IPIs sent (one per remote core per flush).
    pub initiated: u64,
    /// Shootdown IPIs serviced (remote TLB invalidated + EOI).
    pub completed: u64,
    /// Per-core flag: a shootdown IPI is in flight to this core.
    pub pending: Vec<bool>,
}

/// The kernel's SMP extension. `None` on the kernel — or `n_cores == 1`
/// here — reproduces pre-SMP behaviour bit-for-bit.
#[derive(Clone, Debug)]
pub struct SmpState {
    /// Number of cores.
    pub n_cores: u8,
    /// The core whose state is resident in the kernel's active fields.
    pub cur_core: u8,
    /// Per-core slots; `slots[cur_core]` holds the swapped-out
    /// placeholder and is never read while that core is active.
    pub slots: Vec<CoreSlot>,
    /// Distributor routing: which core each device line is delivered to.
    pub routing: IrqRouting,
    /// Big kernel lock bookkeeping.
    pub lock: BigLock,
    /// TLB-shootdown progress.
    pub shootdown: Shootdown,
    /// Per-core count of reschedule IPIs sent *to* that core.
    pub resched_sent: Vec<u64>,
    /// IPIs serviced to completion (EOI'd), both kinds.
    pub ipi_eois: u64,
    /// Seeded-bug hook: when set, reschedule IPIs are dropped instead
    /// of raised (the lost-wakeup bug the explorer must catch).
    pub drop_resched_ipis: bool,
}

impl SmpState {
    /// Builds SMP state for `n` cores; every parked slot idles on
    /// `idle` with empty queues, and the placeholder contexts are cold
    /// copies of the boot configuration `mk_ctx` produces.
    pub(crate) fn new(n: u8, idle: ObjId, mk_ctx: impl Fn() -> CoreCtx) -> SmpState {
        SmpState {
            n_cores: n,
            cur_core: 0,
            slots: (0..n)
                .map(|_| CoreSlot {
                    ctx: mk_ctx(),
                    queues: RunQueues::new(),
                    cur: idle,
                    sched_action: SchedAction::ResumeCurrent,
                })
                .collect(),
            routing: IrqRouting::default(),
            lock: BigLock::new(n as usize),
            shootdown: Shootdown {
                initiated: 0,
                completed: 0,
                pending: vec![false; n as usize],
            },
            resched_sent: vec![0; n as usize],
            ipi_eois: 0,
            drop_resched_ipis: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_wait_is_capped_per_core() {
        let mut l = BigLock::new(4);
        // Core 1 held [100, 100_000_000): far longer than the cap.
        l.enter(1, 100);
        l.exit(1, 100_000_000);
        // Core 2 held [0, 300).
        l.enter(2, 0);
        l.exit(2, 300);
        // An entry on core 0 at cycle 200 overlaps both: core 1's hold
        // is capped at hold_cap, core 2 contributes its true remaining
        // overlap.
        let w = l.wait_for_entry(0, 200);
        assert_eq!(w, DEFAULT_LOCK_HOLD_CAP + 100);
        // The same entry after both holds ended charges nothing.
        assert_eq!(l.wait_for_entry(0, 200_000_000), 0);
        // The holder itself never waits on its own hold: core 1 sees
        // only core 2's remaining overlap (300 - 200 = 100).
        assert_eq!(l.wait_for_entry(1, 200), 100);
    }

    #[test]
    fn hold_log_rolls_over() {
        let mut l = BigLock::new(2);
        for i in 0..200u64 {
            l.enter(0, i * 10);
            l.exit(0, i * 10 + 5);
        }
        assert_eq!(l.hold_log.len(), 64);
        // The newest hold is present somewhere in the rolling window.
        assert!(l.hold_log.iter().any(|h| h.start == 1990));
    }
}
