//! System calls: dispatch, IPC, object creation/deletion, VM operations.
//!
//! Every operation here follows the paper's discipline:
//!
//! * the whole call runs with interrupts disabled; pending interrupts are
//!   only noticed at [`crate::kernel::Kernel::preemption_point`]s and at
//!   kernel exit (§2.1);
//! * a preempted operation unwinds with [`Preempted`], having already
//!   stored its progress *in the objects* (endpoint abort 4-tuple §3.4,
//!   untyped clear watermark §3.5, page-table lowest-mapped index §3.6) —
//!   the trapped thread re-executes the same system call to resume;
//! * deletion is *incrementally consistent* (§2.1): there is always a
//!   constant-time step that partially deconstructs the composite object
//!   and leaves the system coherent.

use std::sync::Arc;

use rt_hw::Addr;

use crate::cap::{self, Badge, CapType, Mapping, Rights, SlotRef, SpaceRef};
use crate::cnode::DecodeError;
use crate::ep::{self, EpState};
use crate::kernel::{Kernel, SchedAction, SchedKind, VmKind};
use crate::kprog::Block;
use crate::ntfn;
use crate::obj::{ObjId, ObjKind};
use crate::preempt::Preempted;
use crate::tcb::{
    MsgInfo, Tcb, ThreadState, OFF_BADGE, OFF_EP_NEXT, OFF_EP_PREV, OFF_MSGINFO, OFF_STATE,
};
use crate::untyped::{PendingRetype, RetypeKind};
use crate::vspace::{self, PdEntry, PtEntry};
use crate::{CLEAR_CHUNK_BYTES, CSPACE_DEPTH_BITS, MAX_MSG_WORDS, MAX_XFER_CAPS};

/// User-visible system calls and invocations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// Send on an endpoint cap; blocks if no receiver and `block`.
    Send {
        /// Capability address of the endpoint.
        cptr: u32,
        /// Message length in words.
        len: u32,
        /// Capability addresses to transfer (grant).
        caps: Vec<u32>,
        /// Whether to block when no receiver waits.
        block: bool,
    },
    /// Send and wait for a reply (server RPC).
    Call {
        /// Capability address of the endpoint.
        cptr: u32,
        /// Message length in words.
        len: u32,
        /// Capability addresses to transfer.
        caps: Vec<u32>,
    },
    /// Block until a message arrives on the endpoint.
    Recv {
        /// Capability address of the endpoint.
        cptr: u32,
    },
    /// Reply to the caller of the last received Call.
    Reply {
        /// Reply message length in words.
        len: u32,
        /// Capability addresses to transfer with the reply.
        caps: Vec<u32>,
    },
    /// The atomic send-receive (§6.1) — reply to the caller, then wait for
    /// the next request; "the worst case [system call] detected".
    ReplyRecv {
        /// Capability address of the endpoint to receive on.
        cptr: u32,
        /// Reply message length in words.
        len: u32,
        /// Capability addresses to transfer with the reply.
        caps: Vec<u32>,
    },
    /// Signal a notification.
    Signal {
        /// Capability address of the notification.
        cptr: u32,
    },
    /// Wait on a notification.
    Wait {
        /// Capability address of the notification.
        cptr: u32,
    },
    /// Give up the CPU to the next thread of equal priority.
    Yield,
    /// Retype untyped memory into objects (§3.5).
    Retype {
        /// Capability address of the untyped object.
        untyped: u32,
        /// What to create.
        kind: RetypeKind,
        /// How many objects.
        count: u32,
        /// Capability address of the destination CNode.
        dest_cnode: u32,
        /// First destination slot index.
        dest_offset: u32,
    },
    /// Delete the capability at `cptr` (destroying the object if final).
    Delete {
        /// Capability address to delete.
        cptr: u32,
    },
    /// Revoke all capabilities derived from `cptr`; revoking a badged
    /// endpoint cap also aborts in-flight sends with that badge (§3.4).
    Revoke {
        /// Capability address to revoke.
        cptr: u32,
    },
    /// Copy a capability with reduced rights and a new badge.
    Mint {
        /// Source capability address.
        src: u32,
        /// Destination (must resolve to an empty slot).
        dest: u32,
        /// Badge for endpoint/notification caps.
        badge: Badge,
        /// Rights mask.
        rights: Rights,
    },
    /// Map a frame into an address space (§3.6).
    MapFrame {
        /// Frame capability address.
        frame: u32,
        /// Page-directory capability address.
        pd: u32,
        /// Virtual address.
        vaddr: Addr,
    },
    /// Unmap a frame.
    UnmapFrame {
        /// Frame capability address.
        frame: u32,
    },
    /// Install a page table into a directory.
    MapPageTable {
        /// Page-table capability address.
        pt: u32,
        /// Page-directory capability address.
        pd: u32,
        /// Virtual address the table will cover.
        vaddr: Addr,
    },
    /// Assign an ASID to a page directory (legacy VM design only).
    AssignAsid {
        /// ASID-pool capability address.
        pool: u32,
        /// Page-directory capability address.
        pd: u32,
    },
    /// Bind an IRQ handler cap to a notification.
    IrqSetNtfn {
        /// IRQ-handler capability address.
        handler: u32,
        /// Notification capability address.
        ntfn: u32,
    },
    /// Acknowledge an interrupt, unmasking its line for re-delivery (the
    /// seL4 driver protocol: Wait, service the device, Ack, Wait...).
    IrqAck {
        /// IRQ-handler capability address.
        handler: u32,
    },
    /// Resume (start) a thread.
    TcbResume {
        /// TCB capability address.
        tcb: u32,
    },
    /// Suspend a thread.
    TcbSuspend {
        /// TCB capability address.
        tcb: u32,
    },
    /// Change a thread's fixed priority (re-queueing it and maintaining
    /// the §3.2 bitmap if it is on a run queue).
    TcbSetPriority {
        /// TCB capability address.
        tcb: u32,
        /// New priority.
        prio: u8,
    },
    /// Install a thread's capability-space root and fault handler.
    TcbConfigure {
        /// TCB capability address.
        tcb: u32,
        /// Capability address (in the caller's cspace) of the new root
        /// CNode cap.
        cspace_root: u32,
        /// Fault-handler capability address, decoded in the *configured
        /// thread's* cspace when it faults.
        fault_handler: u32,
    },
}

/// Why a system call failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysError {
    /// Capability address did not decode.
    Decode(DecodeError),
    /// The decoded cap has the wrong type for the operation.
    InvalidCap,
    /// Insufficient rights.
    Rights,
    /// The endpoint is being deleted (§3.3 forward-progress rule).
    Deactivated,
    /// Non-blocking operation would have blocked.
    WouldBlock,
    /// Untyped has insufficient free memory.
    OutOfMemory,
    /// Destination slot is occupied.
    DestOccupied,
    /// Mapping already exists / vaddr occupied.
    AlreadyMapped,
    /// Nothing mapped where expected.
    NotMapped,
    /// Operation not available under the configured VM design.
    WrongVmDesign,
    /// Object still in use (e.g. deleting a non-empty CNode).
    InUse,
}

/// Result of a system call that ran to completion.
pub type SyscallResult = Result<(), SysError>;

/// Result of attempting a system call: it either completed (possibly with
/// an error) or hit a preemption point and will be restarted (§2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// The operation ran to completion.
    Completed(SyscallResult),
    /// A preemption point fired; the thread is in `Restart` state and will
    /// re-execute the same call.
    Preempted,
}

impl Kernel {
    /// Full system-call entry: trap, (possibly) fastpath, dispatch,
    /// perform, schedule, exit.
    pub fn handle_syscall(&mut self, sys: Syscall) -> SyscallOutcome {
        self.lock_enter();
        let out = self.handle_syscall_locked(sys);
        self.lock_exit();
        out
    }

    /// The system-call body, run under the big kernel lock.
    fn handle_syscall_locked(&mut self, sys: Syscall) -> SyscallOutcome {
        self.stats.syscall_entries += 1;
        self.blk0(Block::SwiEntry);
        let cur = self.current();
        {
            let t = self.objs.tcb_mut(cur);
            t.current_syscall = Some(sys.clone());
            if t.state == ThreadState::Restart {
                t.state = ThreadState::Running;
            }
        }
        if self.config.fastpath {
            if let Some(res) = self.try_fastpath(&sys) {
                self.machine.trace_phase("fastpath");
                self.stats.fastpath_hits += 1;
                self.objs.tcb_mut(cur).current_syscall = None;
                self.exit_kernel();
                return SyscallOutcome::Completed(res);
            }
        }
        let m0 = Tcb::msg_addr(&self.objs, cur, 0);
        let m1 = Tcb::msg_addr(&self.objs, cur, 1);
        self.blk(Block::DispatchStart, &[m0, m1]);
        match self.perform(&sys) {
            Ok(result) => {
                self.objs.tcb_mut(cur).current_syscall = None;
                self.exit_kernel();
                SyscallOutcome::Completed(result)
            }
            Err(Preempted) => {
                // The operation unwound; its progress lives in the objects.
                // Handle the interrupt that fired, then leave the kernel;
                // the thread is in Restart state and keeps its syscall.
                self.interrupt_core();
                self.exit_kernel();
                SyscallOutcome::Preempted
            }
        }
    }

    /// Dispatch on the system call (the Fig. 6 cap-type switch).
    fn perform(&mut self, sys: &Syscall) -> Result<SyscallResult, Preempted> {
        let cur = self.current();
        let m2 = Tcb::msg_addr(&self.objs, cur, 2);
        self.blk(Block::DispatchSwitch, &[m2]);
        match sys {
            Syscall::Send {
                cptr,
                len,
                caps,
                block,
            } => {
                self.blk0(Block::CaseEp);
                Ok(self.sys_send(*cptr, *len, caps, *block, false))
            }
            Syscall::Call { cptr, len, caps } => {
                self.blk0(Block::CaseEp);
                Ok(self.sys_send(*cptr, *len, caps, true, true))
            }
            Syscall::Recv { cptr } => {
                self.blk0(Block::CaseEp);
                Ok(self.sys_recv(*cptr))
            }
            Syscall::Reply { len, caps } => {
                self.blk0(Block::CaseReply);
                Ok(self.sys_reply(*len, caps))
            }
            Syscall::ReplyRecv { cptr, len, caps } => {
                self.blk0(Block::CaseReply);
                let r = self.sys_reply(*len, caps);
                if r.is_err() {
                    return Ok(r);
                }
                self.blk0(Block::CaseEp);
                Ok(self.sys_recv(*cptr))
            }
            Syscall::Signal { cptr } => {
                self.blk0(Block::CaseNtfn);
                Ok(self.sys_signal(*cptr))
            }
            Syscall::Wait { cptr } => {
                self.blk0(Block::CaseNtfn);
                Ok(self.sys_wait(*cptr))
            }
            Syscall::Yield => {
                self.blk0(Block::CaseTcb);
                self.sys_yield();
                Ok(Ok(()))
            }
            Syscall::Retype {
                untyped,
                kind,
                count,
                dest_cnode,
                dest_offset,
            } => {
                self.blk0(Block::CaseUntyped);
                self.sys_retype(*untyped, *kind, *count, *dest_cnode, *dest_offset)
            }
            Syscall::Delete { cptr } => {
                self.blk0(Block::CaseCNode);
                self.sys_delete(*cptr)
            }
            Syscall::Revoke { cptr } => {
                self.blk0(Block::CaseCNode);
                self.sys_revoke(*cptr)
            }
            Syscall::Mint {
                src,
                dest,
                badge,
                rights,
            } => {
                self.blk0(Block::CaseCNode);
                Ok(self.sys_mint(*src, *dest, *badge, *rights))
            }
            Syscall::MapFrame { frame, pd, vaddr } => {
                self.blk0(Block::CaseVspace);
                Ok(self.sys_map_frame(*frame, *pd, *vaddr))
            }
            Syscall::UnmapFrame { frame } => {
                self.blk0(Block::CaseVspace);
                Ok(self.sys_unmap_frame(*frame))
            }
            Syscall::MapPageTable { pt, pd, vaddr } => {
                self.blk0(Block::CaseVspace);
                Ok(self.sys_map_pt(*pt, *pd, *vaddr))
            }
            Syscall::AssignAsid { pool, pd } => {
                self.blk0(Block::CaseVspace);
                Ok(self.sys_assign_asid(*pool, *pd))
            }
            Syscall::IrqSetNtfn { handler, ntfn } => {
                self.blk0(Block::CaseIrq);
                Ok(self.sys_irq_set_ntfn(*handler, *ntfn))
            }
            Syscall::IrqAck { handler } => {
                self.blk0(Block::CaseIrq);
                Ok(self.sys_irq_ack(*handler))
            }
            Syscall::TcbResume { tcb } => {
                self.blk0(Block::CaseTcb);
                Ok(self.sys_tcb_resume(*tcb))
            }
            Syscall::TcbSuspend { tcb } => {
                self.blk0(Block::CaseTcb);
                Ok(self.sys_tcb_suspend(*tcb))
            }
            Syscall::TcbSetPriority { tcb, prio } => {
                self.blk0(Block::CaseTcb);
                Ok(self.sys_tcb_set_priority(*tcb, *prio))
            }
            Syscall::TcbConfigure {
                tcb,
                cspace_root,
                fault_handler,
            } => {
                self.blk0(Block::CaseTcb);
                Ok(self.sys_tcb_configure(*tcb, *cspace_root, *fault_handler))
            }
        }
    }

    /// Resolves `cptr` in the current thread's cspace.
    fn resolve_cur(&mut self, cptr: u32) -> Result<SlotRef, SysError> {
        let root = self.objs.tcb(self.current()).cspace_root.clone();
        self.resolve_charged(&root, cptr, CSPACE_DEPTH_BITS)
            .map_err(SysError::Decode)
    }

    // --- IPC ---------------------------------------------------------------

    fn sys_send(
        &mut self,
        cptr: u32,
        len: u32,
        caps: &[u32],
        block: bool,
        is_call: bool,
    ) -> SyscallResult {
        let cur = self.current();
        let slot = self.resolve_cur(cptr)?;
        let (epobj, badge, rights) = match self.cap_at(slot) {
            CapType::Endpoint { obj, badge, rights } => (obj, badge, rights),
            _ => return Err(SysError::InvalidCap),
        };
        if !rights.write {
            return Err(SysError::Rights);
        }
        {
            let t = self.objs.tcb_mut(cur);
            t.msg_info = MsgInfo {
                length: len.min(MAX_MSG_WORDS),
                extra_caps: caps.len().min(MAX_XFER_CAPS as usize) as u32,
                label: 0,
            };
            t.xfer_caps = caps.to_vec();
        }
        self.ipc_send(cur, epobj, badge, rights.grant, block, is_call)
    }

    /// Core send: deliver to a waiting receiver, or enqueue and block.
    pub(crate) fn ipc_send(
        &mut self,
        sender: ObjId,
        epobj: ObjId,
        badge: Badge,
        can_grant: bool,
        block: bool,
        is_call: bool,
    ) -> SyscallResult {
        let e0 = self.obj_addr(epobj, 0);
        self.blk(Block::SendCheck, &[e0, e0 + 4]);
        if !self.objs.ep(epobj).active {
            return Err(SysError::Deactivated);
        }
        let has_receiver = self.objs.ep(epobj).state == EpState::Receiving;
        if has_receiver {
            let recv = self
                .objs
                .ep(epobj)
                .head
                .expect("Receiving implies a waiter");
            let r_st = self.tcb_addr(recv, OFF_STATE);
            let r_nx = self.tcb_addr(recv, OFF_EP_NEXT);
            self.blk(Block::SendDequeueRecv, &[e0, r_st, r_nx, r_st, r_nx, e0]);
            ep::ep_unlink(&mut self.objs, epobj, recv);
            self.do_transfer(sender, recv, badge, can_grant);
            if is_call {
                self.objs.tcb_mut(sender).state = ThreadState::BlockedOnReply;
                self.objs.tcb_mut(recv).caller = Some(sender);
            }
            self.wake_thread(recv, is_call);
            Ok(())
        } else {
            if !block {
                return Err(SysError::WouldBlock);
            }
            let s_fields = self.tcb_addr(sender, OFF_STATE);
            let e_tail = e0 + 4;
            let old_tail = self.objs.ep(epobj).tail;
            let prev_nx = old_tail
                .map(|t| self.tcb_addr(t, OFF_EP_NEXT))
                .unwrap_or(e0 + 8);
            self.blk(
                Block::SendEnqueue,
                &[
                    e_tail,
                    s_fields,
                    s_fields + 4,
                    s_fields + 8,
                    e_tail,
                    prev_nx,
                ],
            );
            ep::ep_append(&mut self.objs, epobj, sender, EpState::Sending);
            self.objs.tcb_mut(sender).state = ThreadState::BlockedOnSend {
                ep: epobj,
                badge,
                can_grant,
                is_call,
            };
            self.objs.tcb_mut(sender).wait_since = self.machine.now();
            // Current thread blocked with no decision: the scheduler picks.
            Ok(())
        }
    }

    fn sys_recv(&mut self, cptr: u32) -> SyscallResult {
        let cur = self.current();
        let slot = self.resolve_cur(cptr)?;
        let (epobj, _badge, rights) = match self.cap_at(slot) {
            CapType::Endpoint { obj, badge, rights } => (obj, badge, rights),
            _ => return Err(SysError::InvalidCap),
        };
        if !rights.read {
            return Err(SysError::Rights);
        }
        self.ipc_recv(cur, epobj)
    }

    /// Core receive: take a queued sender's message, or enqueue and block.
    pub(crate) fn ipc_recv(&mut self, recv: ObjId, epobj: ObjId) -> SyscallResult {
        let e0 = self.obj_addr(epobj, 0);
        self.blk(Block::RecvCheck, &[e0, e0 + 4]);
        if !self.objs.ep(epobj).active {
            return Err(SysError::Deactivated);
        }
        let has_sender = self.objs.ep(epobj).state == EpState::Sending;
        if has_sender {
            let sender = self.objs.ep(epobj).head.expect("Sending implies a waiter");
            let s_st = self.tcb_addr(sender, OFF_STATE);
            let s_nx = self.tcb_addr(sender, OFF_EP_NEXT);
            self.blk(Block::RecvDequeueSend, &[e0, s_st, s_nx, s_st, s_nx, e0]);
            ep::ep_unlink(&mut self.objs, epobj, sender);
            let (badge, can_grant, is_call) = match self.objs.tcb(sender).state {
                ThreadState::BlockedOnSend {
                    badge,
                    can_grant,
                    is_call,
                    ..
                } => (badge, can_grant, is_call),
                ref s => panic!("sender queued with state {s:?}"),
            };
            self.do_transfer(sender, recv, badge, can_grant);
            if is_call {
                self.objs.tcb_mut(sender).state = ThreadState::BlockedOnReply;
                self.objs.tcb_mut(recv).caller = Some(sender);
            } else {
                // Receiver keeps running; the sender is merely unblocked.
                self.wake_thread(sender, false);
            }
            Ok(())
        } else {
            let r_fields = self.tcb_addr(recv, OFF_STATE);
            let e_tail = e0 + 4;
            let old_tail = self.objs.ep(epobj).tail;
            let prev_nx = old_tail
                .map(|t| self.tcb_addr(t, OFF_EP_NEXT))
                .unwrap_or(e0 + 8);
            self.blk(
                Block::RecvEnqueue,
                &[
                    e_tail,
                    r_fields,
                    r_fields + 4,
                    r_fields + 8,
                    e_tail,
                    prev_nx,
                ],
            );
            ep::ep_append(&mut self.objs, epobj, recv, EpState::Receiving);
            self.objs.tcb_mut(recv).state = ThreadState::BlockedOnRecv { ep: epobj };
            self.objs.tcb_mut(recv).wait_since = self.machine.now();
            Ok(())
        }
    }

    fn sys_reply(&mut self, len: u32, caps: &[u32]) -> SyscallResult {
        let cur = self.current();
        let Some(caller) = self.objs.tcb_mut(cur).caller.take() else {
            return Ok(()); // reply to nobody is a no-op, as in seL4
        };
        {
            let t = self.objs.tcb_mut(cur);
            t.msg_info = MsgInfo {
                length: len.min(MAX_MSG_WORDS),
                extra_caps: caps.len().min(MAX_XFER_CAPS as usize) as u32,
                label: 0,
            };
            t.xfer_caps = caps.to_vec();
        }
        let c_caller = self.tcb_addr(cur, 0x2c);
        let st_caller = self.tcb_addr(caller, OFF_STATE);
        let f = self.tcb_addr(caller, OFF_EP_NEXT);
        self.blk(Block::ReplyXfer, &[c_caller, st_caller, f, f + 4, f + 8]);
        self.do_transfer(cur, caller, Badge::NONE, true);
        self.wake_thread(caller, false);
        Ok(())
    }

    /// Message + capability transfer (§6.1's "full-length message transfer,
    /// and granting access rights to objects over IPC").
    fn do_transfer(&mut self, from: ObjId, to: ObjId, badge: Badge, can_grant: bool) {
        let info = self.objs.tcb(from).msg_info;
        let fa = self.tcb_addr(from, OFF_MSGINFO);
        let ta = self.tcb_addr(to, OFF_MSGINFO);
        self.blk(Block::TransferSetup, &[fa, ta]);
        let len = info.length.min(MAX_MSG_WORDS);
        for i in 0..len {
            let src = Tcb::msg_addr(&self.objs, from, i);
            let dst = Tcb::msg_addr(&self.objs, to, i);
            self.blk(Block::TransferWord, &[src, dst]);
            let w = self
                .objs
                .tcb(from)
                .msg
                .get(i as usize)
                .copied()
                .unwrap_or(0);
            let m = &mut self.objs.tcb_mut(to).msg;
            if m.len() <= i as usize {
                m.resize(i as usize + 1, 0);
            }
            m[i as usize] = w;
        }
        let tb = self.tcb_addr(to, OFF_BADGE);
        self.blk(Block::TransferBadge, &[tb, tb + 4]);
        {
            let t = self.objs.tcb_mut(to);
            t.recv_badge = badge;
            t.msg_info = info;
        }
        // Capability transfer.
        let caps: Vec<u32> = self.objs.tcb(from).xfer_caps.clone();
        self.objs.tcb_mut(from).xfer_caps.clear();
        if !can_grant || caps.is_empty() {
            return;
        }
        let from_root = self.objs.tcb(from).cspace_root.clone();
        let mut src_slots = Vec::new();
        for cptr in caps.iter().take(MAX_XFER_CAPS as usize) {
            // One decode per transferred cap, in the sender's cspace.
            if let Ok(s) = self.resolve_charged(&from_root, *cptr, CSPACE_DEPTH_BITS) {
                src_slots.push(s);
            }
        }
        // Receive-slot lookup: two decodes in the receiver's cspace.
        let Some((croot_cptr, node_cptr)) = self.objs.tcb(to).recv_slot_spec else {
            return; // receiver accepts no caps; badges only
        };
        let to_root = self.objs.tcb(to).cspace_root.clone();
        let Ok(croot_slot) = self.resolve_charged(&to_root, croot_cptr, CSPACE_DEPTH_BITS) else {
            return;
        };
        let croot_cap = self.cap_at(croot_slot);
        let Ok(dest_slot) = self.resolve_charged(&croot_cap, node_cptr, CSPACE_DEPTH_BITS) else {
            return;
        };
        let mut dest_used = false;
        for s in src_slots {
            let sa = s.addr(&self.objs);
            let da = dest_slot.addr(&self.objs);
            self.blk(Block::CapXferOne, &[sa, sa + 4, da, da + 4, da + 8]);
            if !dest_used {
                let capv = self.cap_at(s);
                if !capv.is_null() && cap::read_slot(&self.objs, dest_slot).cap.is_null() {
                    cap::insert_cap(&mut self.objs, dest_slot, capv, Some(s));
                    dest_used = true;
                }
            }
            // Further caps are unwrapped to badges only, as in seL4 when
            // the receive slot is exhausted.
        }
    }

    // --- Notifications -------------------------------------------------------

    fn sys_signal(&mut self, cptr: u32) -> SyscallResult {
        let slot = self.resolve_cur(cptr)?;
        let (obj, badge, rights) = match self.cap_at(slot) {
            CapType::Notification { obj, badge, rights } => (obj, badge, rights),
            _ => return Err(SysError::InvalidCap),
        };
        if !rights.write {
            return Err(SysError::Rights);
        }
        let n0 = self.obj_addr(obj, 0);
        self.blk(Block::NtfnSignalOp, &[n0, n0 + 4, n0, n0 + 4]);
        match ntfn::signal(&mut self.objs, obj, badge) {
            ntfn::SignalOutcome::Wake { tcb, word } => {
                self.objs.tcb_mut(tcb).msg_info.label = word;
                self.wake_thread(tcb, false);
            }
            ntfn::SignalOutcome::Accumulated => {}
        }
        Ok(())
    }

    fn sys_wait(&mut self, cptr: u32) -> SyscallResult {
        let cur = self.current();
        let slot = self.resolve_cur(cptr)?;
        let (obj, _badge, rights) = match self.cap_at(slot) {
            CapType::Notification { obj, badge, rights } => (obj, badge, rights),
            _ => return Err(SysError::InvalidCap),
        };
        if !rights.read {
            return Err(SysError::Rights);
        }
        let n0 = self.obj_addr(obj, 0);
        self.blk(Block::NtfnWaitOp, &[n0, n0 + 4, n0, n0 + 4]);
        match ntfn::wait(&mut self.objs, obj, cur) {
            Some(word) => {
                self.objs.tcb_mut(cur).msg_info.label = word;
            }
            None => {
                self.objs.tcb_mut(cur).state = ThreadState::BlockedOnNotification { ntfn: obj };
                self.objs.tcb_mut(cur).wait_since = self.machine.now();
            }
        }
        Ok(())
    }

    fn sys_yield(&mut self) {
        let cur = self.current();
        // Move to the tail of the priority's queue and choose anew.
        if self.objs.tcb(cur).in_runqueue {
            self.queues.dequeue(&mut self.objs, cur);
        }
        self.queues.enqueue(&mut self.objs, cur);
        if self.config.sched == SchedKind::BennoBitmap {
            self.blk0(Block::BitmapSet);
        }
        self.set_reschedule();
    }

    pub(crate) fn set_reschedule(&mut self) {
        self.force_choose_new();
    }

    // --- Retype (§3.5) -------------------------------------------------------

    fn sys_retype(
        &mut self,
        untyped: u32,
        kind: RetypeKind,
        count: u32,
        dest_cnode: u32,
        dest_offset: u32,
    ) -> Result<SyscallResult, Preempted> {
        let ut_slot = match self.resolve_cur(untyped) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        let ut_obj = match self.cap_at(ut_slot) {
            CapType::Untyped(o) => o,
            _ => return Ok(Err(SysError::InvalidCap)),
        };
        let dest_slot_root = match self.resolve_cur(dest_cnode) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        let dest_node = match self.cap_at(dest_slot_root) {
            CapType::CNode { obj, .. } => obj,
            _ => return Ok(Err(SysError::InvalidCap)),
        };
        let u0 = self.obj_addr(ut_obj, 0);
        self.blk(Block::RetypeCheck, &[u0, u0 + 4]);

        let shadow = self.config.vm == VmKind::ShadowPt;
        let size_bits = kind.size_bits(shadow);
        // Page directories are created one per invocation: each carries an
        // unpreemptible 1 KiB kernel-mapping copy (§3.5's tolerated ~20 µs
        // segment), so batching them would grow the bound.
        let max = if matches!(kind, RetypeKind::PageDirectory) {
            1
        } else {
            crate::untyped::MAX_RETYPE_COUNT
        };
        let count = count.max(1).min(max);
        // Destination slots must be empty.
        for i in 0..count {
            let idx = dest_offset + i;
            if idx >= self.objs.cnode(dest_node).num_slots() {
                return Ok(Err(SysError::DestOccupied));
            }
            if !self.objs.cnode(dest_node).slot(idx).cap.is_null() {
                return Ok(Err(SysError::DestOccupied));
            }
        }
        // Plan (or recover the in-flight plan after a preemption).
        let (ut_base, ut_size) = {
            let o = self.objs.get(ut_obj);
            (o.base, o.size())
        };
        let pending = self.objs.untyped(ut_obj).pending;
        let plan = match pending {
            // A restarted call must be the *same* request (seL4 re-decodes
            // and re-validates on every restart); a different kind/count
            // while a retype is in flight is rejected rather than silently
            // continuing the old plan.
            Some(p) => {
                if p.kind != kind || p.count != count {
                    return Ok(Err(SysError::InUse));
                }
                p
            }
            None => {
                let Some((start, len_total)) = self
                    .objs
                    .untyped(ut_obj)
                    .plan(ut_base, ut_size, size_bits, count)
                else {
                    return Ok(Err(SysError::OutOfMemory));
                };
                let p = PendingRetype {
                    kind,
                    count,
                    region_start: start,
                    region_len: len_total,
                };
                let u = self.objs.untyped_mut(ut_obj);
                u.pending = Some(p);
                u.clear_progress = 0;
                p
            }
        };

        // Phase 1 (§3.5): clear *all* object contents before any other
        // kernel state changes, preempting at 1 KiB multiples, progress
        // stored in the untyped object.
        let mut off = self.objs.untyped(ut_obj).clear_progress;
        while off < plan.region_len {
            let chunk = CLEAR_CHUNK_BYTES.min(plan.region_len - off);
            let mut line = 0;
            while line < chunk {
                let base = plan.region_start + off + line;
                let addrs: Vec<Addr> = (0..8).map(|w| base + 4 * w).collect();
                self.blk(Block::ClearLine, &addrs);
                line += 32;
            }
            self.machine.phys.zero_range(plan.region_start + off, chunk);
            off += chunk;
            self.objs.untyped_mut(ut_obj).clear_progress = off;
            if off < plan.region_len {
                self.preemption_point()?;
            }
        }

        // Phase 2: the short atomic pass — create objects and caps.
        let obj_size = 1u32 << size_bits;
        for i in 0..plan.count {
            let base = plan.region_start + i * obj_size;
            let okind = self.make_object_kind(plan.kind, shadow);
            let id = self.objs.insert(base, size_bits, okind);
            // Page directories additionally receive the kernel global
            // mappings: a 1 KiB copy, unpreemptible (§3.5, ~20 µs).
            if matches!(plan.kind, RetypeKind::PageDirectory) {
                for l in 0..(vspace::KERNEL_MAPPING_BYTES / 32) {
                    let dst = base + vspace::KERNEL_PDE_START * 4 + l * 32;
                    let addrs: Vec<Addr> = (0..8).map(|w| dst + 4 * w).collect();
                    self.blk(Block::PdCopyLine, &addrs);
                }
                self.objs.pd_mut(id).install_kernel_mappings();
            }
            let dslot = SlotRef::new(dest_node, dest_offset + i);
            let da = dslot.addr(&self.objs);
            self.blk(
                Block::RetypeCreateObj,
                &[da, da + 4, da + 8, base, base + 4],
            );
            let capv = self.cap_for_new_object(plan.kind, id);
            cap::insert_cap(&mut self.objs, dslot, capv, Some(ut_slot));
            self.objs.untyped_mut(ut_obj).children.push(id);
        }
        self.blk(Block::RetypeFinish, &[u0 + 8, u0 + 12]);
        {
            let u = self.objs.untyped_mut(ut_obj);
            u.watermark = (plan.region_start + plan.region_len) - ut_base;
            u.pending = None;
            u.clear_progress = 0;
        }
        Ok(Ok(()))
    }

    fn make_object_kind(&self, kind: RetypeKind, shadow: bool) -> ObjKind {
        match kind {
            RetypeKind::Tcb => ObjKind::Tcb(Tcb::new("retyped", 0)),
            RetypeKind::Endpoint => ObjKind::Endpoint(crate::ep::Endpoint::new()),
            RetypeKind::Notification => ObjKind::Notification(crate::ntfn::Notification::new()),
            RetypeKind::CNode { radix_bits } => {
                ObjKind::CNode(crate::cnode::CNode::new(radix_bits))
            }
            RetypeKind::Frame { size_bits } => ObjKind::Frame(vspace::Frame::new(size_bits)),
            RetypeKind::PageTable => ObjKind::PageTable(vspace::PageTable::new(shadow)),
            RetypeKind::PageDirectory => ObjKind::PageDirectory(vspace::PageDirectory::new(shadow)),
            RetypeKind::AsidPool => ObjKind::AsidPool(vspace::AsidPool::new()),
        }
    }

    fn cap_for_new_object(&self, kind: RetypeKind, id: ObjId) -> CapType {
        match kind {
            RetypeKind::Tcb => CapType::Tcb(id),
            RetypeKind::Endpoint => CapType::Endpoint {
                obj: id,
                badge: Badge::NONE,
                rights: Rights::ALL,
            },
            RetypeKind::Notification => CapType::Notification {
                obj: id,
                badge: Badge::NONE,
                rights: Rights::ALL,
            },
            RetypeKind::CNode { .. } => CapType::CNode {
                obj: id,
                guard_bits: 0,
                guard: 0,
            },
            RetypeKind::Frame { .. } => CapType::Frame {
                obj: id,
                mapping: None,
                rights: Rights::ALL,
            },
            RetypeKind::PageTable => CapType::PageTable {
                obj: id,
                mapped: None,
            },
            RetypeKind::PageDirectory => CapType::PageDirectory {
                obj: id,
                asid: None,
            },
            RetypeKind::AsidPool => CapType::AsidPool(id),
        }
    }

    // --- Delete / revoke ------------------------------------------------

    fn sys_delete(&mut self, cptr: u32) -> Result<SyscallResult, Preempted> {
        let slot = match self.resolve_cur(cptr) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        self.delete_slot(slot)
    }

    /// Deletes the cap at `slot`; if it is the final cap, destroys the
    /// object first (which may preempt — the slot stays intact so the
    /// restarted call finds the teardown where it left off).
    pub(crate) fn delete_slot(&mut self, slot: SlotRef) -> Result<SyscallResult, Preempted> {
        let sa = slot.addr(&self.objs);
        self.blk(Block::CNodeDelete, &[sa, sa + 4, sa, sa + 4]);
        let capv = self.cap_at(slot);
        if capv.is_null() {
            return Ok(Err(SysError::InvalidCap));
        }
        if cap::is_final(&self.objs, slot) {
            self.destroy_object(&capv)?;
        }
        cap::delete_cap(&mut self.objs, slot);
        Ok(Ok(()))
    }

    fn sys_revoke(&mut self, cptr: u32) -> Result<SyscallResult, Preempted> {
        let slot = match self.resolve_cur(cptr) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        // Delete descendants one at a time; grandchildren are reparented
        // to `slot` by delete, so the loop sees them next (incremental
        // consistency: every intermediate state is coherent).
        loop {
            let children = cap::children_of(&self.objs, slot);
            let Some(&child) = children.first() else {
                break;
            };
            let ca = child.addr(&self.objs);
            self.blk(Block::RevokeIter, &[ca, ca + 4, ca, ca + 4]);
            // Per-cap failures (e.g. an already-empty slot) do not stop a
            // revocation sweep; preemption does.
            let _completed: SyscallResult = self.delete_slot(child)?;
            self.preemption_point()?;
        }
        // §3.4: revoking a *badged* endpoint cap additionally aborts all
        // in-flight sends carrying that badge.
        if let CapType::Endpoint { obj, badge, .. } = self.cap_at(slot) {
            if badge != Badge::NONE {
                self.badged_abort(obj, badge)?;
            }
        }
        Ok(Ok(()))
    }

    /// The §3.4 badged abort with its four-field resume state stored in
    /// the endpoint.
    pub(crate) fn badged_abort(&mut self, epobj: ObjId, badge: Badge) -> Result<(), Preempted> {
        let cur = self.current();
        let e0 = self.obj_addr(epobj, 0);
        // A previously preempted abort that someone else completed for us?
        if self.objs.ep(epobj).completed_for == Some(cur) {
            self.objs.ep_mut(epobj).completed_for = None;
            self.blk(Block::AbortFinish, &[e0 + 16, e0 + 20]);
            return Ok(());
        }
        if self.objs.ep(epobj).abort.is_none() {
            let (head, tail) = {
                let e = self.objs.ep(epobj);
                (e.head, e.tail)
            };
            let Some(tail) = tail else {
                return Ok(()); // empty queue: nothing to abort
            };
            if self.objs.ep(epobj).state != EpState::Sending {
                return Ok(()); // receivers carry no badges
            }
            self.blk(
                Block::AbortSetup,
                &[e0, e0 + 4, e0 + 16, e0 + 20, e0 + 24, e0 + 28],
            );
            self.objs.ep_mut(epobj).abort = Some(crate::ep::AbortState {
                badge,
                cursor: head,
                end: tail,
                initiator: cur,
            });
        }
        loop {
            let st = self
                .objs
                .ep(epobj)
                .abort
                .expect("abort state present in loop");
            let Some(cursor) = st.cursor else {
                break;
            };
            // Each examined element is a §3.4 resume step (the four-field
            // AbortState in the endpoint is the resume state).
            self.machine.trace_phase("abort-step");
            let c0 = self.tcb_addr(cursor, OFF_STATE);
            self.blk(Block::AbortIter, &[c0, c0 + OFF_BADGE, c0 + OFF_EP_NEXT]);
            let next = self.objs.tcb(cursor).ep_next;
            let at_end = cursor == st.end;
            let matches = ep::queued_badge(&self.objs, cursor) == Some(st.badge);
            if matches {
                let p = self.tcb_addr(cursor, OFF_EP_PREV);
                let n = self.tcb_addr(cursor, OFF_EP_NEXT);
                self.blk(Block::AbortRemove, &[p, n, c0, c0 + 4]);
                ep::ep_unlink(&mut self.objs, epobj, cursor);
                self.objs.tcb_mut(cursor).state = ThreadState::Restart;
                self.make_runnable_enqueue(cursor);
            }
            {
                let e = self.objs.ep_mut(epobj);
                let a = e.abort.as_mut().expect("abort state");
                a.cursor = if at_end { None } else { next };
            }
            if at_end {
                break;
            }
            // §3.4: preemption point after each examined element.
            self.preemption_point()?;
        }
        self.blk(Block::AbortFinish, &[e0 + 16, e0 + 20]);
        let st = self.objs.ep_mut(epobj).abort.take().expect("abort state");
        if st.initiator != cur {
            // Indicate to the original thread that its operation is done.
            self.objs.ep_mut(epobj).completed_for = Some(st.initiator);
        }
        Ok(())
    }

    /// Tears down an object whose final capability is being deleted.
    fn destroy_object(&mut self, capv: &CapType) -> Result<(), Preempted> {
        match *capv {
            CapType::Endpoint { obj, .. } => self.destroy_endpoint(obj),
            CapType::Notification { obj, .. } => {
                // Drop any IRQ bindings and release the waiters, one
                // preemptible step each (as for endpoint deletion, §3.3).
                self.irq_table.unbind_ntfn(obj);
                while let Some(w) = ntfn::ntfn_pop(&mut self.objs, obj) {
                    let w0 = self.tcb_addr(w, OFF_STATE);
                    let n0 = self.obj_addr(obj, 0);
                    self.blk(Block::EpDelIter, &[n0, w0 + OFF_EP_NEXT, w0, w0 + 4, n0]);
                    self.objs.tcb_mut(w).state = ThreadState::Restart;
                    self.make_runnable_enqueue(w);
                    if !self.objs.ntfn(obj).is_idle() {
                        self.preemption_point()?;
                    }
                }
                self.objs.remove(obj);
                Ok(())
            }
            CapType::Tcb(obj) => {
                self.destroy_tcb(obj);
                Ok(())
            }
            CapType::CNode { obj, .. } => {
                // Destroying a CNode deletes every contained capability
                // first (recursively destroying objects whose final cap
                // lives inside), one slot per preemption segment — the
                // incremental-consistency pattern again: each deleted slot
                // leaves a coherent, strictly smaller system. A cap that
                // references an object already being torn down (including
                // the CNode itself) is simply removed, breaking cycles the
                // way seL4's zombie caps do.
                if self.destroying.contains(&obj) {
                    return Ok(());
                }
                self.destroying.push(obj);
                let res = self.destroy_cnode_contents(obj);
                self.destroying.retain(|&x| x != obj);
                res?;
                self.objs.remove(obj);
                Ok(())
            }
            CapType::Frame { obj, mapping, .. } => {
                if let Some(m) = mapping {
                    self.unmap_frame_at(obj, m);
                }
                self.objs.remove(obj);
                Ok(())
            }
            CapType::PageTable { obj, .. } => self.destroy_pt(obj),
            CapType::PageDirectory { obj, asid } => self.destroy_pd(obj, asid),
            CapType::AsidPool(obj) => {
                self.destroy_asid_pool(obj);
                Ok(())
            }
            CapType::Untyped(_) => Ok(()), // region returns to the parent
            _ => Ok(()),
        }
    }

    /// §3.3: preemptible endpoint deletion — deactivate, then dequeue one
    /// thread per step.
    fn destroy_endpoint(&mut self, epobj: ObjId) -> Result<(), Preempted> {
        let e0 = self.obj_addr(epobj, 0);
        if self.objs.ep(epobj).active {
            self.blk(Block::EpDelSetup, &[e0, e0 + 12]);
            self.objs.ep_mut(epobj).active = false;
        }
        while let Some(t) = self.objs.ep(epobj).head {
            // Each dequeue step is where a preempted deletion resumes from:
            // the endpoint's queue head *is* the §3.3 resume state.
            self.machine.trace_phase("ep-del-step");
            let t0 = self.tcb_addr(t, OFF_STATE);
            self.blk(Block::EpDelIter, &[e0, t0 + OFF_EP_NEXT, t0, t0 + 4, e0]);
            ep::ep_unlink(&mut self.objs, epobj, t);
            self.objs.tcb_mut(t).state = ThreadState::Restart;
            self.make_runnable_enqueue(t);
            if self.objs.ep(epobj).head.is_some() {
                // "There is an obvious preemption point in this operation:
                // after each thread is dequeued" (§3.3).
                self.preemption_point()?;
            }
        }
        self.blk(Block::EpDelFinish, &[e0]);
        self.objs.remove(epobj);
        Ok(())
    }

    /// Deletes every occupied slot of `obj`, preemptible per slot. Each
    /// step is charged a slot examination (the same cost shape as the
    /// badged-abort cursor walk) before the delete itself.
    fn destroy_cnode_contents(&mut self, obj: ObjId) -> Result<(), Preempted> {
        while let Some(i) = self.objs.cnode(obj).first_occupied() {
            let slot = SlotRef::new(obj, i);
            let sa = slot.addr(&self.objs);
            self.blk(Block::RevokeIter, &[sa, sa + 4, sa, sa + 4]);
            let _ = self.delete_slot(slot)?;
            if self.objs.cnode(obj).first_occupied().is_some() {
                self.preemption_point()?;
            }
        }
        Ok(())
    }

    fn destroy_tcb(&mut self, tcb: ObjId) {
        if self.objs.tcb(tcb).in_runqueue {
            self.queues.dequeue(&mut self.objs, tcb);
        }
        // Unhook from any endpoint queue.
        let st = self.objs.tcb(tcb).state.clone();
        match st {
            ThreadState::BlockedOnSend { ep, .. } | ThreadState::BlockedOnRecv { ep } => {
                ep::ep_unlink(&mut self.objs, ep, tcb);
            }
            ThreadState::BlockedOnNotification { ntfn } => {
                ntfn::ntfn_unlink(&mut self.objs, ntfn, tcb);
            }
            _ => {}
        }
        if self.current() == tcb {
            self.force_choose_new();
        }
        self.objs.remove(tcb);
    }

    fn destroy_pt(&mut self, pt: ObjId) -> Result<(), Preempted> {
        if self.config.vm == VmKind::ShadowPt {
            // Preemptible per-entry teardown from the lowest mapped index.
            loop {
                let (i, shadow_slot) = {
                    let p = self.objs.pt(pt);
                    let start = p.lowest_mapped.min(vspace::PT_ENTRIES);
                    let Some(i) = (start..vspace::PT_ENTRIES)
                        .find(|&i| !matches!(p.entries[i as usize], PtEntry::Invalid))
                    else {
                        break;
                    };
                    (i, p.shadow[i as usize])
                };
                let pt_base = self.objs.get(pt).base;
                let ea = pt_base + 4 * i;
                let sa = pt_base + 1024 + 4 * i;
                let ca = shadow_slot.map(|s| s.addr(&self.objs)).unwrap_or(sa);
                self.blk(Block::VsDelIter, &[ea, sa, ea, ca]);
                {
                    let p = self.objs.pt_mut(pt);
                    p.entries[i as usize] = PtEntry::Invalid;
                    p.shadow[i as usize] = None;
                    p.lowest_mapped = i + 1;
                }
                // Eagerly purge the frame cap's mapping via the shadow
                // back-pointer (Fig. 5).
                if let Some(s) = shadow_slot {
                    self.clear_frame_cap_mapping(s);
                }
                self.preemption_point()?;
            }
        }
        // Unhook from the owning directory.
        if let Some((pd, idx)) = self.objs.pt(pt).mapped_in {
            if self.objs.is_live(pd) {
                self.objs.pd_mut(pd).entries[idx as usize] = PdEntry::Invalid;
                if self.config.vm == VmKind::ShadowPt {
                    self.objs.pd_mut(pd).shadow[idx as usize] = None;
                }
            }
        }
        let pt_base = self.objs.get(pt).base;
        self.blk(Block::VsDelFinish, &[pt_base]);
        self.tlb_flush();
        self.objs.remove(pt);
        Ok(())
    }

    fn destroy_pd(&mut self, pd: ObjId, asid: Option<u32>) -> Result<(), Preempted> {
        match self.config.vm {
            VmKind::Asid => {
                // Lazy deletion (§3.6): remove the ASID table entry and
                // flush the TLB; stale frame caps are harmless.
                if let Some(a) = asid {
                    if let Some(pool) = self.asid_table.pool_of(a) {
                        let pa = self.obj_addr(pool, (a % 1024) * 4);
                        self.blk(Block::AsidResolve, &[pa]);
                        self.objs.asid_pool_mut(pool).entries[(a % 1024) as usize] = None;
                    }
                }
                self.tlb_flush();
                self.objs.remove(pd);
                Ok(())
            }
            VmKind::ShadowPt => {
                // Eager, preemptible teardown of every user entry. The
                // per-entry order is restart-safe (incremental
                // consistency): nested page-table mappings are purged
                // *before* the directory entry is invalidated, so a
                // preempted teardown resumes exactly where it stopped and
                // no frame cap is ever left dangling (§3.6).
                loop {
                    let (i, entry, shadow_slot) = {
                        let p = self.objs.pd(pd);
                        let start = p.lowest_mapped.min(vspace::KERNEL_PDE_START);
                        let Some(i) = (start..vspace::KERNEL_PDE_START)
                            .find(|&i| !matches!(p.entries[i as usize], PdEntry::Invalid))
                        else {
                            break;
                        };
                        (i, p.entries[i as usize], p.shadow[i as usize])
                    };
                    // Purge what the entry reaches.
                    match entry {
                        PdEntry::Table { pt } if self.objs.is_live(pt) => {
                            self.purge_pt_entries(pt)?;
                            self.objs.pt_mut(pt).mapped_in = None;
                        }
                        PdEntry::Section { .. } => {
                            if let Some(s) = shadow_slot {
                                self.clear_frame_cap_mapping(s);
                            }
                        }
                        _ => {}
                    }
                    let pd_base = self.objs.get(pd).base;
                    let ea = pd_base + 4 * i;
                    let sa = pd_base + 16 * 1024 + 4 * i;
                    let ca = shadow_slot.map(|s| s.addr(&self.objs)).unwrap_or(sa);
                    self.blk(Block::VsDelIter, &[ea, sa, ea, ca]);
                    {
                        let p = self.objs.pd_mut(pd);
                        p.entries[i as usize] = PdEntry::Invalid;
                        p.shadow[i as usize] = None;
                        p.lowest_mapped = i + 1;
                    }
                    self.preemption_point()?;
                }
                let pd_base = self.objs.get(pd).base;
                self.blk(Block::VsDelFinish, &[pd_base]);
                self.tlb_flush();
                self.objs.remove(pd);
                Ok(())
            }
        }
    }

    /// §3.6 (legacy): deleting an ASID pool iterates over up to 1024
    /// address spaces — unpreemptible, the design's Achilles heel.
    fn destroy_asid_pool(&mut self, pool: ObjId) {
        let base = self.objs.get(pool).base;
        for i in 0..vspace::ASID_POOL_ENTRIES {
            let ea = base + 4 * i;
            self.blk(Block::AsidPoolDelIter, &[ea, ea, ea]);
            self.objs.asid_pool_mut(pool).entries[i as usize] = None;
        }
        self.tlb_flush();
        // Remove from the top-level table.
        for p in Arc::make_mut(&mut self.asid_table.pools).iter_mut() {
            if *p == Some(pool) {
                *p = None;
            }
        }
        self.objs.remove(pool);
    }

    /// Clears every mapped entry of `pt`, purging the frame caps through
    /// the shadow back-pointers, one preemptible step per entry (§3.6).
    fn purge_pt_entries(&mut self, pt: ObjId) -> Result<(), Preempted> {
        loop {
            let (i, shadow_slot) = {
                let p = self.objs.pt(pt);
                let start = p.lowest_mapped.min(vspace::PT_ENTRIES);
                let Some(i) = (start..vspace::PT_ENTRIES)
                    .find(|&i| !matches!(p.entries[i as usize], PtEntry::Invalid))
                else {
                    return Ok(());
                };
                (i, p.shadow[i as usize])
            };
            let pt_base = self.objs.get(pt).base;
            let ea = pt_base + 4 * i;
            let sa = pt_base + 1024 + 4 * i;
            let ca = shadow_slot.map(|s| s.addr(&self.objs)).unwrap_or(sa);
            self.blk(Block::VsDelIter, &[ea, sa, ea, ca]);
            {
                let p = self.objs.pt_mut(pt);
                p.entries[i as usize] = PtEntry::Invalid;
                p.shadow[i as usize] = None;
                p.lowest_mapped = i + 1;
            }
            if let Some(s) = shadow_slot {
                self.clear_frame_cap_mapping(s);
            }
            self.preemption_point()?;
        }
    }

    fn clear_frame_cap_mapping(&mut self, slot: SlotRef) {
        if !self.objs.is_live(slot.cnode) {
            return;
        }
        let s = self.objs.cnode_mut(slot.cnode).slot_mut(slot.index);
        if let CapType::Frame { mapping, .. } = &mut s.cap {
            *mapping = None;
        }
    }

    fn sys_mint(&mut self, src: u32, dest: u32, badge: Badge, rights: Rights) -> SyscallResult {
        let src_slot = self.resolve_cur(src)?;
        let dest_slot = self.resolve_cur(dest)?;
        let sa = src_slot.addr(&self.objs);
        let da = dest_slot.addr(&self.objs);
        self.blk(Block::CNodeCopy, &[sa, sa + 4, da, da + 4, da + 8]);
        if !cap::read_slot(&self.objs, dest_slot).cap.is_null() {
            return Err(SysError::DestOccupied);
        }
        let minted = match self.cap_at(src_slot) {
            CapType::Endpoint {
                obj,
                badge: b0,
                rights: r0,
            } => CapType::Endpoint {
                obj,
                badge: if badge == Badge::NONE { b0 } else { badge },
                rights: r0.masked(rights),
            },
            CapType::Notification {
                obj,
                badge: b0,
                rights: r0,
            } => CapType::Notification {
                obj,
                badge: if badge == Badge::NONE { b0 } else { badge },
                rights: r0.masked(rights),
            },
            CapType::Null => return Err(SysError::InvalidCap),
            other => other,
        };
        cap::insert_cap(&mut self.objs, dest_slot, minted, Some(src_slot));
        Ok(())
    }

    // --- VM operations (§3.6) -------------------------------------------

    fn sys_map_frame(&mut self, frame: u32, pd: u32, vaddr: Addr) -> SyscallResult {
        let f_slot = self.resolve_cur(frame)?;
        let pd_slot = self.resolve_cur(pd)?;
        let (f_obj, f_mapping) = match self.cap_at(f_slot) {
            CapType::Frame { obj, mapping, .. } => (obj, mapping),
            _ => return Err(SysError::InvalidCap),
        };
        let (pd_obj, pd_asid) = match self.cap_at(pd_slot) {
            CapType::PageDirectory { obj, asid } => (obj, asid),
            _ => return Err(SysError::InvalidCap),
        };
        if f_mapping.is_some() {
            return Err(SysError::AlreadyMapped);
        }
        let fa = f_slot.addr(&self.objs);
        let pd_base = self.objs.get(pd_obj).base;
        let pdi = vspace::pd_index(vaddr);
        if pdi >= vspace::KERNEL_PDE_START {
            return Err(SysError::AlreadyMapped); // kernel region
        }
        self.blk(Block::MapFrameCheck, &[fa, fa + 4, pd_base + 4 * pdi]);
        let space = match self.config.vm {
            VmKind::Asid => {
                let Some(asid) = pd_asid else {
                    return Err(SysError::NotMapped); // PD has no ASID yet
                };
                let pa = self
                    .asid_table
                    .pool_of(asid)
                    .map(|p| self.obj_addr(p, (asid % 1024) * 4))
                    .unwrap_or(pd_base);
                self.blk(Block::AsidResolve, &[pa]);
                if self.asid_table.resolve(&self.objs, asid) != Some(pd_obj) {
                    return Err(SysError::NotMapped);
                }
                SpaceRef::Asid(asid)
            }
            VmKind::ShadowPt => SpaceRef::Pd(pd_obj),
        };
        let f_size = self.objs.frame(f_obj).size_bits;
        let shadow = self.config.vm == VmKind::ShadowPt;
        match f_size {
            20 => {
                // 1 MiB section directly in the PD.
                if !matches!(self.objs.pd(pd_obj).entries[pdi as usize], PdEntry::Invalid) {
                    return Err(SysError::AlreadyMapped);
                }
                let ea = pd_base + 4 * pdi;
                let sa = pd_base + 16 * 1024 + 4 * pdi;
                self.blk(Block::MapFrameCommit, &[ea, sa, fa]);
                let p = self.objs.pd_mut(pd_obj);
                p.entries[pdi as usize] = PdEntry::Section { frame: f_obj };
                p.note_mapped(pdi);
                if shadow {
                    p.shadow[pdi as usize] = Some(f_slot);
                }
            }
            12 => {
                // 4 KiB page via a page table.
                let PdEntry::Table { pt } = self.objs.pd(pd_obj).entries[pdi as usize] else {
                    return Err(SysError::NotMapped); // no PT installed
                };
                let pti = vspace::pt_index(vaddr);
                if !matches!(self.objs.pt(pt).entries[pti as usize], PtEntry::Invalid) {
                    return Err(SysError::AlreadyMapped);
                }
                let pt_base = self.objs.get(pt).base;
                let ea = pt_base + 4 * pti;
                let sa = pt_base + 1024 + 4 * pti;
                self.blk(Block::MapFrameCommit, &[ea, sa, fa]);
                let p = self.objs.pt_mut(pt);
                p.entries[pti as usize] = PtEntry::Page { frame: f_obj };
                p.note_mapped(pti);
                if shadow {
                    p.shadow[pti as usize] = Some(f_slot);
                }
            }
            _ => return Err(SysError::InvalidCap), // other sizes: not yet modelled
        }
        // Record the mapping in the frame cap (§3.6: the cap stores the
        // address space and virtual address).
        let s = self.objs.cnode_mut(f_slot.cnode).slot_mut(f_slot.index);
        if let CapType::Frame { mapping, .. } = &mut s.cap {
            *mapping = Some(Mapping { space, vaddr });
        }
        Ok(())
    }

    fn sys_unmap_frame(&mut self, frame: u32) -> SyscallResult {
        let f_slot = self.resolve_cur(frame)?;
        let (f_obj, f_mapping) = match self.cap_at(f_slot) {
            CapType::Frame { obj, mapping, .. } => (obj, mapping),
            _ => return Err(SysError::InvalidCap),
        };
        let Some(m) = f_mapping else {
            return Err(SysError::NotMapped);
        };
        self.unmap_frame_at(f_obj, m);
        let s = self.objs.cnode_mut(f_slot.cnode).slot_mut(f_slot.index);
        if let CapType::Frame { mapping, .. } = &mut s.cap {
            *mapping = None;
        }
        Ok(())
    }

    /// Clears the page-table state behind a frame mapping. Under the
    /// legacy design a stale ASID simply fails the agreement check — the
    /// "harmless dangling reference" property of §3.6.
    fn unmap_frame_at(&mut self, f_obj: ObjId, m: Mapping) {
        let pd_obj = match m.space {
            SpaceRef::Asid(a) => {
                let pa = self
                    .asid_table
                    .pool_of(a)
                    .map(|p| self.obj_addr(p, (a % 1024) * 4))
                    .unwrap_or(crate::kprog::KERNEL_GLOBALS_BASE);
                self.blk(Block::AsidResolve, &[pa]);
                match self.asid_table.resolve(&self.objs, a) {
                    Some(pd) => pd,
                    None => return, // stale ASID: nothing to do
                }
            }
            SpaceRef::Pd(pd) => pd,
        };
        if !self.objs.is_live(pd_obj) {
            return;
        }
        let shadow = self.config.vm == VmKind::ShadowPt;
        let pdi = vspace::pd_index(m.vaddr);
        let pd_base = self.objs.get(pd_obj).base;
        match self.objs.pd(pd_obj).entries[pdi as usize] {
            PdEntry::Section { frame } if frame == f_obj => {
                let ea = pd_base + 4 * pdi;
                let sa = pd_base + 16 * 1024 + 4 * pdi;
                self.blk(Block::UnmapFrame, &[ea, ea + 4, ea, sa, ea]);
                let p = self.objs.pd_mut(pd_obj);
                p.entries[pdi as usize] = PdEntry::Invalid;
                if shadow {
                    p.shadow[pdi as usize] = None;
                }
            }
            PdEntry::Table { pt } => {
                let pti = vspace::pt_index(m.vaddr);
                let pt_base = self.objs.get(pt).base;
                if matches!(
                    self.objs.pt(pt).entries[pti as usize],
                    PtEntry::Page { frame } if frame == f_obj
                ) {
                    let ea = pt_base + 4 * pti;
                    let sa = pt_base + 1024 + 4 * pti;
                    self.blk(Block::UnmapFrame, &[ea, ea + 4, ea, sa, ea]);
                    let p = self.objs.pt_mut(pt);
                    p.entries[pti as usize] = PtEntry::Invalid;
                    if shadow {
                        p.shadow[pti as usize] = None;
                    }
                }
            }
            _ => {} // mapping disagrees: stale, harmless
        }
        self.tlb_flush();
    }

    fn sys_map_pt(&mut self, pt: u32, pd: u32, vaddr: Addr) -> SyscallResult {
        let pt_slot = self.resolve_cur(pt)?;
        let pd_slot = self.resolve_cur(pd)?;
        let pt_obj = match self.cap_at(pt_slot) {
            CapType::PageTable { obj, mapped } => {
                if mapped.is_some() {
                    return Err(SysError::AlreadyMapped);
                }
                obj
            }
            _ => return Err(SysError::InvalidCap),
        };
        let pd_obj = match self.cap_at(pd_slot) {
            CapType::PageDirectory { obj, .. } => obj,
            _ => return Err(SysError::InvalidCap),
        };
        let pdi = vspace::pd_index(vaddr);
        if pdi >= vspace::KERNEL_PDE_START {
            return Err(SysError::AlreadyMapped);
        }
        if !matches!(self.objs.pd(pd_obj).entries[pdi as usize], PdEntry::Invalid) {
            return Err(SysError::AlreadyMapped);
        }
        let pd_base = self.objs.get(pd_obj).base;
        let ea = pd_base + 4 * pdi;
        let sa = pd_base + 16 * 1024 + 4 * pdi;
        let pta = pt_slot.addr(&self.objs);
        self.blk(Block::MapFrameCheck, &[pta, pta + 4, ea]);
        self.blk(Block::MapFrameCommit, &[ea, sa, pta]);
        {
            let p = self.objs.pd_mut(pd_obj);
            p.entries[pdi as usize] = PdEntry::Table { pt: pt_obj };
            p.note_mapped(pdi);
            if self.config.vm == VmKind::ShadowPt {
                p.shadow[pdi as usize] = Some(pt_slot);
            }
        }
        self.objs.pt_mut(pt_obj).mapped_in = Some((pd_obj, pdi));
        let s = self.objs.cnode_mut(pt_slot.cnode).slot_mut(pt_slot.index);
        if let CapType::PageTable { mapped, .. } = &mut s.cap {
            *mapped = Some(Mapping {
                space: SpaceRef::Pd(pd_obj),
                vaddr,
            });
        }
        Ok(())
    }

    /// §3.6 (legacy): assigning an ASID scans the pool for a free slot —
    /// up to 1024 unpreemptible iterations.
    fn sys_assign_asid(&mut self, pool: u32, pd: u32) -> SyscallResult {
        if self.config.vm != VmKind::Asid {
            return Err(SysError::WrongVmDesign);
        }
        let pool_slot = self.resolve_cur(pool)?;
        let pd_slot = self.resolve_cur(pd)?;
        let pool_obj = match self.cap_at(pool_slot) {
            CapType::AsidPool(o) => o,
            _ => return Err(SysError::InvalidCap),
        };
        let pd_obj = match self.cap_at(pd_slot) {
            CapType::PageDirectory { obj, asid } => {
                if asid.is_some() {
                    return Err(SysError::AlreadyMapped);
                }
                obj
            }
            _ => return Err(SysError::InvalidCap),
        };
        // The unpreemptible scan.
        let base = self.objs.get(pool_obj).base;
        let mut found = None;
        for i in 0..vspace::ASID_POOL_ENTRIES {
            self.blk(Block::AsidAllocIter, &[base + 4 * i]);
            if self.objs.asid_pool(pool_obj).entries[i as usize].is_none() {
                found = Some(i);
                break;
            }
        }
        let Some(slot_idx) = found else {
            return Err(SysError::OutOfMemory);
        };
        // Pool position in the top-level table determines the ASID base.
        let top = self
            .asid_table
            .pools
            .iter()
            .position(|p| *p == Some(pool_obj))
            .ok_or(SysError::InvalidCap)? as u32;
        let asid = top * vspace::ASID_POOL_ENTRIES + slot_idx;
        self.objs.asid_pool_mut(pool_obj).entries[slot_idx as usize] = Some(pd_obj);
        let s = self.objs.cnode_mut(pd_slot.cnode).slot_mut(pd_slot.index);
        if let CapType::PageDirectory { asid: a, .. } = &mut s.cap {
            *a = Some(asid);
        }
        Ok(())
    }

    fn tlb_flush(&mut self) {
        self.blk0(Block::TlbFlush);
        // SMP: remote cores may cache translations from this address
        // space — broadcast a shootdown IPI (no-op below 2 cores).
        self.tlb_shootdown_broadcast();
    }

    // --- IRQ / TCB management ------------------------------------------------

    fn sys_irq_set_ntfn(&mut self, handler: u32, ntfn: u32) -> SyscallResult {
        let h_slot = self.resolve_cur(handler)?;
        let n_slot = self.resolve_cur(ntfn)?;
        let line = match self.cap_at(h_slot) {
            CapType::IrqHandler(l) => l,
            _ => return Err(SysError::InvalidCap),
        };
        let (n_obj, badge) = match self.cap_at(n_slot) {
            CapType::Notification { obj, badge, .. } => (obj, badge),
            _ => return Err(SysError::InvalidCap),
        };
        self.irq_table.bind(line, n_obj, badge);
        self.unmask_routed(rt_hw::IrqLine(line));
        Ok(())
    }

    fn sys_tcb_set_priority(&mut self, tcb: u32, prio: u8) -> SyscallResult {
        let slot = self.resolve_cur(tcb)?;
        let t = match self.cap_at(slot) {
            CapType::Tcb(t) => t,
            _ => return Err(SysError::InvalidCap),
        };
        let ta = self.tcb_addr(t, OFF_STATE);
        self.blk(Block::TcbInvoke, &[ta, ta + 4, ta, ta + 4, ta + 8, ta + 12]);
        // A queued thread moves between priority queues; the bitmap must
        // keep reflecting the queues (§3.2).
        let was_queued = self.objs.tcb(t).in_runqueue;
        if was_queued {
            self.queues.dequeue(&mut self.objs, t);
            if self.config.sched == SchedKind::BennoBitmap {
                self.blk0(Block::BitmapClear);
            }
        }
        self.objs.tcb_mut(t).prio = prio;
        if was_queued {
            self.queues.enqueue(&mut self.objs, t);
            if self.config.sched == SchedKind::BennoBitmap {
                self.blk0(Block::BitmapSet);
            }
        }
        // Priority changes can invalidate the current choice either way:
        // raising someone above the current thread, or lowering the
        // current thread below a queued one.
        let cur = self.current();
        let affects_cur = t == cur || prio > self.objs.tcb(cur).prio;
        if affects_cur {
            self.force_choose_new();
        }
        Ok(())
    }

    fn sys_tcb_configure(
        &mut self,
        tcb: u32,
        cspace_root: u32,
        fault_handler: u32,
    ) -> SyscallResult {
        let slot = self.resolve_cur(tcb)?;
        let t = match self.cap_at(slot) {
            CapType::Tcb(t) => t,
            _ => return Err(SysError::InvalidCap),
        };
        let root_slot = self.resolve_cur(cspace_root)?;
        let root_cap = self.cap_at(root_slot);
        if !matches!(root_cap, CapType::CNode { .. }) {
            return Err(SysError::InvalidCap);
        }
        let ta = self.tcb_addr(t, OFF_STATE);
        self.blk(Block::TcbInvoke, &[ta, ta + 4, ta, ta + 4, ta + 8, ta + 12]);
        let tt = self.objs.tcb_mut(t);
        tt.cspace_root = root_cap;
        tt.fault_handler = fault_handler;
        Ok(())
    }

    fn sys_irq_ack(&mut self, handler: u32) -> SyscallResult {
        let slot = self.resolve_cur(handler)?;
        let line = match self.cap_at(slot) {
            CapType::IrqHandler(l) => l,
            _ => return Err(SysError::InvalidCap),
        };
        self.unmask_routed(rt_hw::IrqLine(line));
        Ok(())
    }

    fn sys_tcb_resume(&mut self, tcb: u32) -> SyscallResult {
        let slot = self.resolve_cur(tcb)?;
        let t = match self.cap_at(slot) {
            CapType::Tcb(t) => t,
            _ => return Err(SysError::InvalidCap),
        };
        let ta = self.tcb_addr(t, OFF_STATE);
        self.blk(Block::TcbInvoke, &[ta, ta + 4, ta, ta + 4, ta + 8, ta + 12]);
        if !self.objs.tcb(t).state.is_runnable() {
            self.objs.tcb_mut(t).state = ThreadState::Restart;
            self.make_runnable_enqueue(t);
        }
        Ok(())
    }

    fn sys_tcb_suspend(&mut self, tcb: u32) -> SyscallResult {
        let slot = self.resolve_cur(tcb)?;
        let t = match self.cap_at(slot) {
            CapType::Tcb(t) => t,
            _ => return Err(SysError::InvalidCap),
        };
        let ta = self.tcb_addr(t, OFF_STATE);
        self.blk(Block::TcbInvoke, &[ta, ta + 4, ta, ta + 4, ta + 8, ta + 12]);
        if self.objs.tcb(t).in_runqueue {
            self.queues.dequeue(&mut self.objs, t);
        }
        self.objs.tcb_mut(t).state = ThreadState::Inactive;
        if self.current() == t {
            self.force_choose_new();
        }
        Ok(())
    }
}

// A small extension trait hook for kernel internals used above.
impl Kernel {
    pub(crate) fn force_choose_new(&mut self) {
        self.set_sched_action(SchedAction::ChooseNew);
    }
}
