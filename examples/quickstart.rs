//! Quickstart: boot the kernel, run a client/server IPC ping-pong, and
//! read the cycle counters.
//!
//! ```text
//! cargo run -p rt-examples --bin quickstart
//! ```

use rt_examples::{banner, cyc};
use rt_hw::HwConfig;
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::Syscall;
use rt_kernel::system::{Action, StopReason, System, ThreadScript};

fn main() {
    banner("Booting the after-kernel on the modelled i.MX31");
    let mut k = Kernel::new(KernelConfig::after(), HwConfig::default());

    // Root-task setup: a shared CNode, two threads, one endpoint.
    let cnode = k.boot_cnode(8);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 24,
        guard: 0,
    };
    let client = k.boot_tcb("client", 10);
    let server = k.boot_tcb("server", 11);
    let ep = k.boot_endpoint();
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 1),
        CapType::Endpoint {
            obj: ep,
            badge: Badge(0x11),
            rights: Rights::ALL,
        },
        None,
    );
    for t in [client, server] {
        k.objs.tcb_mut(t).cspace_root = root.clone();
    }
    k.boot_resume(server);
    k.boot_resume(client);
    println!(
        "kernel code: {} bytes at 0xf0000000; {} objects live",
        k.layout.code_size(),
        k.objs.len()
    );

    banner("Running a 100-round call/reply ping-pong");
    let mut sys = System::new(k);
    sys.set_script(
        server,
        ThreadScript::once(
            std::iter::once(Action::Syscall(Syscall::Recv { cptr: 1 }))
                .chain((0..100).map(|_| {
                    Action::Syscall(Syscall::ReplyRecv {
                        cptr: 1,
                        len: 2,
                        caps: vec![],
                    })
                }))
                .chain(std::iter::once(Action::Stop))
                .collect(),
        ),
    );
    sys.set_script(
        client,
        ThreadScript::once(
            (0..100)
                .map(|_| {
                    Action::Syscall(Syscall::Call {
                        cptr: 1,
                        len: 2,
                        caps: vec![],
                    })
                })
                .chain(std::iter::once(Action::Stop))
                .collect(),
        ),
    );
    let reason = sys.run(50_000_000);
    assert_ne!(reason, StopReason::StepLimit);
    let k = &sys.kernel;
    println!("simulated time:     {}", cyc(k.machine.now()));
    println!("kernel entries:     {}", k.stats.syscall_entries);
    println!(
        "fastpath hits:      {} (§6.1: the ping-pong is fastpath territory)",
        k.stats.fastpath_hits
    );
    println!(
        "L1I hits/misses:    {}/{}",
        k.machine.mem.l1i_stats.hits, k.machine.mem.l1i_stats.misses
    );
    println!(
        "L1D hits/misses:    {}/{}",
        k.machine.mem.l1d_stats.hits, k.machine.mem.l1d_stats.misses
    );
    let per_round = k.machine.now() / 100;
    println!("cycles per round trip (2 kernel entries): ~{per_round}");

    banner("Tearing down a capability sub-space");
    // The server builds a scratch CNode full of endpoint caps, then
    // deletes its final cap: every contained capability is deleted first,
    // one per preemption segment.
    let mut k2 = sys.kernel;
    let scratch = k2.boot_cnode(5);
    let root_cnode = match k2.objs.tcb(client).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    insert_cap(
        &mut k2.objs,
        SlotRef::new(root_cnode, 9),
        CapType::CNode {
            obj: scratch,
            guard_bits: 0,
            guard: 0,
        },
        None,
    );
    for i in 0..16 {
        let ep = k2.boot_endpoint();
        insert_cap(
            &mut k2.objs,
            SlotRef::new(scratch, i),
            CapType::Endpoint {
                obj: ep,
                badge: Badge(i),
                rights: Rights::ALL,
            },
            None,
        );
    }
    k2.objs.tcb_mut(client).state = rt_kernel::tcb::ThreadState::Running;
    k2.force_current_for_test(client);
    let objs_before = k2.objs.len();
    let t0 = k2.machine.now();
    let out = k2.handle_syscall(Syscall::Delete { cptr: 9 });
    println!(
        "deleted scratch CNode + 16 contained endpoints: {:?}, {} objects -> {}, {}",
        out,
        objs_before,
        k2.objs.len(),
        cyc(k2.machine.now() - t0),
    );

    banner("Kernel invariants (§2.2)");
    rt_kernel::invariants::assert_all(&k2);
    println!("all executable invariants hold");
}
