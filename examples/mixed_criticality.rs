//! Mixed-criticality demo: a hard-real-time driver thread driven by a
//! periodic device interrupt, co-located with an *adversarial* best-effort
//! thread that hammers the kernel with long-running system calls (big
//! retypes). Under the *before* kernel the retype's unpreemptible clearing
//! delays interrupt delivery by milliseconds; under the *after* kernel the
//! 1 KiB preemption points (§3.5) bound the response.
//!
//! ```text
//! cargo run --release -p rt-examples --bin mixed_criticality
//! ```

use rt_examples::{banner, cyc};
use rt_hw::{HwConfig, IrqLine};
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::Syscall;
use rt_kernel::system::{Action, System, ThreadScript};
use rt_kernel::untyped::RetypeKind;

const IRQ: u8 = 5;
const PERIOD: u64 = 400_000; // ~0.75 ms at 532 MHz

fn run(config: KernelConfig, label: &str) -> (u64, u64, usize) {
    let mut k = Kernel::new(config, HwConfig::default());
    let cnode = k.boot_cnode(10);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 22,
        guard: 0,
    };
    // High-priority RT driver bound to the device interrupt.
    let driver = k.boot_tcb("rt-driver", 250);
    let ntfn = k.boot_ntfn();
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 1),
        CapType::Notification {
            obj: ntfn,
            badge: Badge(1),
            rights: Rights::ALL,
        },
        None,
    );
    k.irq_table.issue(IRQ);
    k.irq_table.bind(IRQ, ntfn, Badge(1));
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 4),
        CapType::IrqHandler(IRQ),
        None,
    );
    // Adversarial best-effort thread with a large untyped region.
    let adversary = k.boot_tcb("adversary", 10);
    let ut = k.boot_untyped(22); // 4 MiB
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 2),
        CapType::Untyped(ut),
        None,
    );
    insert_cap(&mut k.objs, SlotRef::new(cnode, 3), root.clone(), None);
    for t in [driver, adversary] {
        k.objs.tcb_mut(t).cspace_root = root.clone();
    }
    k.boot_resume(driver);
    k.boot_resume(adversary);
    // Periodic device interrupts for 40 periods.
    for i in 1..=40 {
        k.machine.irq.schedule(i * PERIOD, IrqLine(IRQ));
    }

    let mut sys = System::new(k);
    // Driver: wait for each interrupt, do a little control work.
    sys.set_script(
        driver,
        ThreadScript::forever(vec![
            Action::Syscall(Syscall::Wait { cptr: 1 }),
            Action::Compute(2_000),
            // seL4 IRQ protocol: the line stays masked until acknowledged.
            Action::Syscall(Syscall::IrqAck { handler: 4 }),
        ]),
    );
    // Adversary: repeatedly retype 64 KiB frames out of the untyped region
    // (each requires clearing 64 KiB — 64 preemption points in the after
    // kernel, zero in the before kernel), polluting the caches in between.
    sys.set_script(
        adversary,
        ThreadScript::forever(vec![
            Action::Pollute,
            Action::Syscall(Syscall::Retype {
                untyped: 2,
                kind: RetypeKind::Frame { size_bits: 16 },
                count: 1,
                dest_cnode: 3,
                dest_offset: 16,
            }),
            Action::Syscall(Syscall::Delete { cptr: 16 }),
        ]),
    );
    sys.run(41 * PERIOD);

    let k = &sys.kernel;
    let responses: Vec<u64> = k
        .irq_log
        .iter()
        .filter_map(|r| r.delivered.map(|d| d - r.raised))
        .collect();
    let worst = responses.iter().copied().max().unwrap_or(0);
    let avg = if responses.is_empty() {
        0
    } else {
        responses.iter().sum::<u64>() / responses.len() as u64
    };
    banner(label);
    println!("interrupts delivered: {}", responses.len());
    println!("worst response:       {}", cyc(worst));
    println!("average response:     {}", cyc(avg));
    println!("preemption points hit: {}", k.stats.preemptions);
    println!("system-call restarts:  {}", k.stats.restarts);
    rt_kernel::invariants::assert_all(k);
    (worst, avg, responses.len())
}

fn main() {
    println!(
        "An RT driver (prio 250) shares the CPU with an adversary (prio 10)\n\
         that retypes 64 KiB frames in a loop. Device IRQ every {PERIOD} cycles."
    );
    let (worst_before, _, n_b) = run(
        KernelConfig::before(),
        "BEFORE kernel (no preemption points)",
    );
    let (worst_after, _, n_a) = run(
        KernelConfig::after(),
        "AFTER kernel (1 KiB preemption points)",
    );
    banner("Verdict");
    assert!(n_b > 0 && n_a > 0);
    println!(
        "worst-case interrupt response improved {:.1}x ({} -> {})",
        worst_before as f64 / worst_after as f64,
        cyc(worst_before),
        cyc(worst_after),
    );
}
