//! Shared helpers for the example binaries.

#![forbid(unsafe_code)]

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats cycles with the microsecond equivalent at 532 MHz.
pub fn cyc(c: u64) -> String {
    format!("{c} cycles ({:.1} us)", rt_hw::cycles_to_us(c))
}
