//! Cache pinning demo (§4): lock the interrupt delivery path, the first
//! 256 bytes of stack and the key globals into one L1 way, and watch the
//! worst-case interrupt delivery shrink — on both the measured machine and
//! the computed bound.
//!
//! ```text
//! cargo run --release -p rt-examples --bin cache_pinning
//! ```

use rt_bench::workloads::WorstInterrupt;
use rt_examples::{banner, cyc};
use rt_hw::HwConfig;
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_kernel::pinning::{apply_pinning, pinned_dcache_lines, pinned_icache_lines};
use rt_wcet::{analyze, AnalysisConfig};

fn observed(pinned: bool) -> u64 {
    let hw = HwConfig {
        locked_l1_ways: if pinned { 1 } else { 0 },
        ..HwConfig::default()
    };
    let mut w = WorstInterrupt::new(KernelConfig::after(), hw);
    if pinned {
        let report = apply_pinning(&mut w.kernel);
        assert_eq!(report.rejected, 0);
    }
    (0..8).map(|_| w.fire_polluted()).max().expect("runs")
}

fn computed(pinned: bool) -> u64 {
    analyze(
        EntryPoint::Interrupt,
        &AnalysisConfig {
            kernel: KernelConfig::after(),
            l2: false,
            pinning: pinned,
            l2_kernel_locked: false,
            manual_constraints: true,
        },
    )
    .cycles
}

fn main() {
    banner("The pinned working set (§4)");
    let layout = rt_kernel::kprog::Layout::new();
    let ilines = pinned_icache_lines(&layout);
    let dlines = pinned_dcache_lines();
    println!(
        "instruction lines: {} (paper pinned 118); data lines: {} (256 B stack + 1 KiB globals)",
        ilines.len(),
        dlines.len()
    );
    println!(
        "one locked way holds 128 lines; everything fits: {}",
        ilines.len() <= 128 && dlines.len() <= 128
    );

    banner("Worst-case interrupt delivery, unpinned vs pinned");
    let (ou, op) = (observed(false), observed(true));
    let (cu, cp) = (computed(false), computed(true));
    println!(
        "observed: {}  ->  {}   ({:.0}% gain)",
        cyc(ou),
        cyc(op),
        100.0 * (1.0 - op as f64 / ou as f64)
    );
    println!(
        "computed: {}  ->  {}   ({:.0}% gain)",
        cyc(cu),
        cyc(cp),
        100.0 * (1.0 - cp as f64 / cu as f64)
    );
    println!("paper (computed): 36.2 us -> 19.5 us (46% gain)");
    assert!(op < ou && cp < cu, "pinning must help the interrupt path");

    banner("The price: less cache for everyone else");
    println!(
        "1 of 4 L1 ways is locked; the rest of the system runs with a \
         12 KiB effective L1,\nwhich is why §4 calls out that \"these \
         benefits do not come for free\"."
    );
}
