//! Badge revocation under load (§3.4).
//!
//! A server has handed a badged endpoint capability to a client population;
//! hundreds of senders are queued when the server revokes one badge. The
//! kernel must abort exactly the matching pending IPCs. Under the *before*
//! kernel the whole queue is walked in one unpreemptible pass; under the
//! *after* kernel a preemption point follows every examined waiter, with
//! the four-field resume state stored in the endpoint — so a concurrent
//! device interrupt is served in bounded time while the abort is in flight.
//!
//! ```text
//! cargo run --release -p rt-examples --bin badge_revocation
//! ```

use rt_examples::{banner, cyc};
use rt_hw::{HwConfig, IrqLine};
use rt_kernel::ep::ep_len;
use rt_kernel::kernel::KernelConfig;
use rt_kernel::syscall::{Syscall, SyscallOutcome};

const QUEUED: u32 = 300;
const BADGE_EVERY: u32 = 3;

fn run(cfg: KernelConfig, label: &str) {
    banner(label);
    // Build the workload from the bench crate's generator: QUEUED senders,
    // every third carrying the to-be-revoked badge.
    let (mut k, _server, cptr) =
        rt_bench::workloads::badged_queue_kernel(cfg, HwConfig::default(), QUEUED, BADGE_EVERY);
    let ep = {
        // cptr 1 is the original unbadged cap; find the endpoint object.
        let root = k.objs.tcb(k.current()).cspace_root.clone();
        let slot = rt_kernel::cnode::resolve_slot(&k.objs, &root, 1, 32, |_| {}).expect("ep");
        match rt_kernel::cap::read_slot(&k.objs, slot).cap {
            rt_kernel::cap::CapType::Endpoint { obj, .. } => obj,
            _ => unreachable!(),
        }
    };
    println!("queued senders before revoke: {}", ep_len(&k.objs, ep));

    // A device interrupt lands right in the middle of the abort.
    k.irq_table.issue(9);
    let ntfn = k.boot_ntfn();
    k.irq_table.bind(9, ntfn, rt_kernel::cap::Badge(1));
    let mid = k.machine.now() + 40_000;
    k.machine.irq.schedule(mid, IrqLine(9));

    let t0 = k.machine.now();
    let mut entries = 0;
    loop {
        entries += 1;
        match k.handle_syscall(Syscall::Revoke { cptr }) {
            SyscallOutcome::Completed(r) => {
                r.expect("revoke succeeds");
                break;
            }
            SyscallOutcome::Preempted => {
                // §2.1: the system harness would re-execute the restarted
                // call when the thread is next scheduled; do so here.
                continue;
            }
        }
        #[allow(unreachable_code)]
        {
            break;
        }
    }
    let total = k.machine.now() - t0;
    println!("total abort time:   {}", cyc(total));
    println!(
        "kernel entries:     {entries} (restarts: {})",
        k.stats.restarts
    );
    println!("preemption points:  {}", k.stats.preemptions);
    println!("queued senders after revoke: {}", ep_len(&k.objs, ep));
    if let Some(r) = k.irq_log.first() {
        println!(
            "mid-abort interrupt response: {}",
            cyc(r.kernel_ack.saturating_sub(r.raised))
        );
    } else {
        println!("mid-abort interrupt was only served after the abort finished");
    }
    rt_kernel::invariants::assert_all(&k);
    let expected_aborted = QUEUED.div_ceil(BADGE_EVERY);
    assert_eq!(ep_len(&k.objs, ep), QUEUED - expected_aborted);
}

fn main() {
    println!(
        "{QUEUED} senders queued on one endpoint; every {BADGE_EVERY}rd carries badge 42.\n\
         The server revokes badge 42 while a device interrupt arrives mid-operation."
    );
    run(
        KernelConfig::before(),
        "BEFORE kernel: unpreemptible queue walk",
    );
    run(
        KernelConfig::after(),
        "AFTER kernel: preemption point per waiter, resume state in the endpoint",
    );
}
