//! Run the full static interrupt-response analysis (§5) and print the
//! bound plus the worst path it found for each kernel entry point.
//!
//! ```text
//! cargo run --release -p rt-examples --bin wcet_analysis
//! ```

use rt_examples::banner;
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_wcet::{analyze, AnalysisConfig};

fn main() {
    let cfg = AnalysisConfig {
        kernel: KernelConfig::after(),
        l2: false,
        pinning: false,
        l2_kernel_locked: false,
        manual_constraints: true,
    };
    banner("Static WCET analysis of the after-kernel (L2 off, no pinning)");
    let mut total_bound = 0;
    for e in EntryPoint::ALL {
        let t0 = std::time::Instant::now();
        let r = analyze(e, &cfg);
        println!(
            "\n{:<22} {:>9} cycles = {:>7.1} us   (ILP: {} vars, {} constraints, {:.2}s host time)",
            e.name(),
            r.cycles,
            r.us,
            r.ilp_vars,
            r.ilp_constraints,
            t0.elapsed().as_secs_f64(),
        );
        println!(
            "  phases: build {:.0}ms, cache/cost {:.0}ms, ILP {:.0}ms (S6.3: Chronos was cache-analysis-dominated; ours is ILP-dominated)",
            r.phases.build.as_secs_f64() * 1e3,
            r.phases.costs.as_secs_f64() * 1e3,
            r.phases.ilp.as_secs_f64() * 1e3,
        );
        println!("  worst path (top contributors):");
        for (b, ctx, n, c) in r.worst_path.iter().take(6) {
            println!("    {b:?}(ctx {ctx}) x{n} @ {c} cycles = {}", n * c);
        }
        if e == EntryPoint::Syscall || e == EntryPoint::Interrupt {
            total_bound += r.cycles;
        }
    }
    banner("Worst-case interrupt response (§6)");
    println!(
        "WCET(system call) + WCET(interrupt) = {} cycles = {:.1} us",
        total_bound,
        rt_hw::cycles_to_us(total_bound)
    );
    println!("paper: 189,117 cycles (356 us on the 532 MHz i.MX31, L2 off)");

    banner("Loop bounds computed by slicing + bounded search (§5.3)");
    let g = rt_wcet::kmodel::build_cfg(EntryPoint::Syscall, KernelConfig::after());
    let mut shown = 0;
    for l in &g.loops {
        if let Some(sem) = &l.semantics {
            let computed =
                rt_wcet::loopbound::max_iterations(sem, l.bound * 2 + 8).expect("bounded");
            let block = g.nodes[l.nodes[0].0].block;
            println!(
                "  {block:?}: declared {} / computed {} {}",
                l.bound,
                computed,
                if computed == l.bound {
                    "OK"
                } else {
                    "MISMATCH"
                }
            );
            shown += 1;
            if shown >= 10 {
                break;
            }
        }
    }
}
