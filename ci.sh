#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repo root.
set -euo pipefail

cargo build --release
cargo test -q

# Exercise the parallel analysis path (worker pool + shared cache) in the
# integration suite: the golden and differential tests must hold when the
# env caps the pool at 2 workers.
RT_JOBS=2 cargo test -q -p rt-tests --test goldens --test batch_differential

# Golden-output check: the repro binary's rendered tables must match the
# checked-in goldens byte for byte (any worker count; 4 covers stealing).
cargo run --release -q -p rt-bench --bin repro -- table1 --jobs 4 | diff -u tests/goldens/table1.txt -
cargo run --release -q -p rt-bench --bin repro -- table2 --jobs 4 | diff -u tests/goldens/table2.txt -
cargo run --release -q -p rt-bench --bin repro -- fig9 --reps 2 --jobs 4 | diff -u tests/goldens/fig9.txt -
cargo run --release -q -p rt-bench --bin repro -- l2lock --reps 2 --jobs 4 | diff -u tests/goldens/l2lock.txt -

# Explorer smoke gate: at depth 6 every scenario must genuinely branch
# (strictly more interleavings than preemption-point decision sites) and
# every oracle must hold (zero counterexamples) on every explored path.
explore_smoke_json="$(mktemp)"
trap 'rm -f "$explore_smoke_json"' EXIT
RT_BENCH_OUT="$explore_smoke_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 6 --jobs 2 | awk '
    /interleavings=/ {
        n++
        inter = -1; pts = -1; cex = -1
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (kv[1] == "interleavings") inter = kv[2] + 0
                else if (kv[1] == "preempt-pts") pts = kv[2] + 0
                else if (kv[1] == "counterexamples") cex = kv[2] + 0
            }
        }
        if (cex != 0) { print "ci: explorer counterexample on line: " $0; bad = 1 }
        if (inter <= pts) { print "ci: scenario did not branch: " $0; bad = 1 }
    }
    END {
        if (n < 5) { print "ci: expected >= 5 explorer scenario lines, saw " n; bad = 1 }
        exit bad
    }
'

# POR soundness gate: at equal depth the sleep-set-reduced search must
# expand exactly the same distinct canonical-state set as the unreduced
# search on every scenario (reduction skips *transitions*, never states)
# while executing no more runs, hold zero counterexamples on the clean
# scenarios, and render byte-identical reports at 1 and 4 workers — two
# separate invocations, so the identity holds across processes, not just
# across pools in one address space (each invocation also self-checks
# identity across its own worker list).
explore_json="$(mktemp)"
explore_off="$(mktemp)"
explore_por_1="$(mktemp)"
explore_por_4="$(mktemp)"
trap 'rm -f "$explore_smoke_json" "$explore_json" "$explore_off" "$explore_por_1" "$explore_por_4"' EXIT
RT_BENCH_OUT="$explore_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 8 --por off --workers 2 >"$explore_off" 2>/dev/null
RT_BENCH_OUT="$explore_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 8 --por sleep --workers 1 >"$explore_por_1" 2>/dev/null
RT_BENCH_OUT="$explore_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 8 --por sleep --workers 4 >"$explore_por_4" 2>/dev/null
diff -u "$explore_por_1" "$explore_por_4" || {
    echo "ci: reduced explore report differs between 1 and 4 workers" >&2
    exit 1
}

# Fork-vs-rebuild identity gate: the snapshot engine is an execution
# shortcut, not a semantic one — the same depth-8 search with
# snapshotting disabled (every branch rebuilt from boot and replayed)
# must render byte-identical stdout to the forked runs above, with zero
# counterexamples (already asserted on the diffed output). A separate
# process again, so the identity holds across address spaces.
explore_rebuild="$(mktemp)"
trap 'rm -f "$explore_smoke_json" "$explore_json" "$explore_off" "$explore_por_1" "$explore_por_4" "$explore_rebuild"' EXIT
RT_BENCH_OUT="$explore_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 8 --por sleep --workers 4 --snapshot-every 0 >"$explore_rebuild" 2>/dev/null
diff -u "$explore_por_4" "$explore_rebuild" || {
    echo "ci: forked and rebuilt explore reports differ at depth 8" >&2
    exit 1
}
awk '
    /interleavings=/ {
        name = $1; d = -1; inter = -1; cex = -1
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (kv[1] == "distinct") d = kv[2] + 0
                else if (kv[1] == "interleavings") inter = kv[2] + 0
                else if (kv[1] == "counterexamples") cex = kv[2] + 0
            }
        }
        if (NR == FNR) { od[name] = d; oi[name] = inter; next }
        n++
        if (!(name in od)) { print "ci: scenario " name " missing from unreduced run"; bad = 1; next }
        if (d != od[name]) { print "ci: POR changed distinct states for " name ": " d " vs " od[name]; bad = 1 }
        if (inter > oi[name]) { print "ci: POR executed more runs for " name ": " inter " > " oi[name]; bad = 1 }
        if (cex != 0) { print "ci: POR counterexample on clean scenario: " $0; bad = 1 }
    }
    END {
        if (n < 5) { print "ci: expected >= 5 reduced scenario lines, saw " n; bad = 1 }
        exit bad
    }
' "$explore_off" "$explore_por_4"

# Scale gate: the widened small-scope scenario must push at least a
# million oracle-checked states through the reduced frontier search
# within the smoke budget (the recorded BENCH_sweep.json explore block
# carries the 1e7-state run of the same configuration), and the
# snapshot-fork engine must clear it in at most half the wall the
# rebuild-from-boot engine needs — `--baseline-rebuild` runs both in one
# process (also asserting byte-identical renders) and records both walls
# in the JSON. The recorded margin is ~4x, so 2x still catches a fork
# path that has quietly degenerated into replay without flaking on noise.
RT_BENCH_OUT="$explore_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --depth 20 --scenario ep-delete-wide --por sleep --budget-states 1050000 --workers 4 \
    --baseline-rebuild 2>/dev/null | awk '
    /interleavings=/ {
        ok = 1; st = -1; cex = -1
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (kv[1] == "states") st = kv[2] + 0
                else if (kv[1] == "counterexamples") cex = kv[2] + 0
            }
        }
        if (st < 1000000) { print "ci: widened scenario explored only " st " states (< 1e6)"; bad = 1 }
        if (cex != 0) { print "ci: counterexample in widened scenario: " $0; bad = 1 }
    }
    END {
        if (!ok) { print "ci: no scenario line from the widened run"; bad = 1 }
        exit bad
    }
'
fork_wall=$(sed -n 's/.*"workers": 4, "wall_ms": \([0-9]*\),.*/\1/p' "$explore_json" | head -1)
rebuild_wall=$(sed -n 's/.*"rebuild_wall_ms": \([0-9]*\),.*/\1/p' "$explore_json" | head -1)
[ -n "$fork_wall" ] && [ -n "$rebuild_wall" ] || {
    echo "ci: fork/rebuild walls missing from explore JSON" >&2
    exit 1
}
awk -v f="$fork_wall" -v r="$rebuild_wall" 'BEGIN {
    if (f * 2 > r) {
        printf "ci: fork wall %d ms > 0.5x rebuild wall %d ms — snapshot engine lost its edge\n", f, r > "/dev/stderr"
        exit 1
    }
}' || exit 1

# Bench smoke pass: the incremental ILP path must actually engage, and the
# fleet sweep must hold its guarantees at a reduced job count. The run
# writes its JSON to a scratch path (committed BENCH_sweep.json stays as
# recorded), then we assert the structure memo absorbed the cost-config
# axis (hit rate > 0.5) and that every batch/fleet report matched serial
# (`bit_identical_to_serial` is the AND of both sweeps' identity checks).
bench_json="$(mktemp)"
trap 'rm -f "$explore_smoke_json" "$explore_json" "$explore_off" "$explore_por_1" "$explore_por_4" "$explore_rebuild" "$bench_json"' EXIT
RT_BENCH_OUT="$bench_json" cargo run --release -q -p rt-bench --bin repro -- \
    bench --workers 1,2,4 --fleet-jobs 200 >/dev/null
grep -q '"bit_identical_to_serial": true' "$bench_json" || {
    echo "ci: bench sweep diverged from serial analyze" >&2
    exit 1
}
structure_rate=$(sed -n 's/.*"ilp_structure": .*"hit_rate": \([0-9.]*\).*/\1/p' "$bench_json" | head -1)
awk -v r="$structure_rate" 'BEGIN { exit !(r > 0.5) }' || {
    echo "ci: ilp_structure hit rate $structure_rate <= 0.5" >&2
    exit 1
}

# Fleet scaling gate. Wall-clock speedup from worker threads only exists
# when the host has CPUs to run them on, so the bounds are CPU-aware:
#   >= 4 CPUs: 4-worker wall must be <= 0.8x the 1-worker wall (scaling
#              must point the right way, with slack for CI noise);
#   <  4 CPUs: 4-worker wall must stay <= 1.35x the 1-worker wall (pure
#              oversubscription overhead; the pre-PR-6 contended pool
#              showed ~1.3x even at fleet=40, so this still catches a
#              reintroduced lock convoy without demanding impossible
#              parallel speedup from a 1-CPU box).
# The 2-worker wall gets its own bound on hosts with >= 2 CPUs: block
# boundaries now snap to structure-group starts, so two workers never
# open on the same presolved skeleton, and with real CPUs behind them
# two workers must not lose to one (<= 1.1x for noise). On a 1-CPU host
# a 2-thread wall measures the host scheduler, not this code — the
# recorded BENCH_sweep.json (host_cpus: 1) shows phantom slowdowns for
# exactly 2 threads that neither syscall, fault nor context-switch
# counters explain — so below 2 CPUs the 2-worker bound is skipped.
host_cpus=$(sed -n 's/.*"host_cpus": \([0-9]*\).*/\1/p' "$bench_json" | head -1)
fleet_wall_1=$(grep '"speedup_vs_1w"' "$bench_json" | sed -n 's/.*"workers": 1,.*"wall_ms": \([0-9.]*\).*/\1/p' | head -1)
fleet_wall_2=$(grep '"speedup_vs_1w"' "$bench_json" | sed -n 's/.*"workers": 2,.*"wall_ms": \([0-9.]*\).*/\1/p' | head -1)
fleet_wall_4=$(grep '"speedup_vs_1w"' "$bench_json" | sed -n 's/.*"workers": 4,.*"wall_ms": \([0-9.]*\).*/\1/p' | head -1)
[ -n "$host_cpus" ] && [ -n "$fleet_wall_1" ] && [ -n "$fleet_wall_2" ] && [ -n "$fleet_wall_4" ] || {
    echo "ci: fleet scaling fields missing from bench JSON" >&2
    exit 1
}
awk -v c="$host_cpus" -v w1="$fleet_wall_1" -v w2="$fleet_wall_2" -v w4="$fleet_wall_4" 'BEGIN {
    bound4 = (c >= 4) ? 0.8 : 1.35
    if (w4 > bound4 * w1) {
        printf "ci: fleet 4-worker wall %.1f ms > %.2fx 1-worker wall %.1f ms (host_cpus=%d)\n", w4, bound4, w1, c > "/dev/stderr"
        exit 1
    }
    if (c >= 2 && w2 > 1.1 * w1) {
        printf "ci: fleet 2-worker wall %.1f ms > 1.10x 1-worker wall %.1f ms (host_cpus=%d)\n", w2, w1, c > "/dev/stderr"
        exit 1
    }
}' || exit 1

# Load-engine smoke gate (docs/WORKLOADS.md): a fixed-seed 100k-event
# heavy-traffic run must (a) report zero soundness violations — no
# observed interrupt response above its static bound — and (b) render
# byte-identical stdout at 1 worker and at 4 workers. Each invocation
# also self-checks identity across its own worker list; running two
# invocations and diffing proves the property holds across *processes*,
# not just across pools in one address space. JSON goes to a scratch
# path so the committed BENCH_sweep.json stays as recorded.
load_out_1="$(mktemp)"
load_out_4="$(mktemp)"
load_json="$(mktemp)"
trap 'rm -f "$explore_smoke_json" "$explore_json" "$explore_off" "$explore_por_1" "$explore_por_4" "$explore_rebuild" "$bench_json" "$load_out_1" "$load_out_4" "$load_json"' EXIT
RT_BENCH_OUT="$load_json" cargo run --release -q -p rt-bench --bin repro -- \
    load --events 100000 --shards 16 --tenants 32 --seed 42 --workers 1 >"$load_out_1"
RT_BENCH_OUT="$load_json" cargo run --release -q -p rt-bench --bin repro -- \
    load --events 100000 --shards 16 --tenants 32 --seed 42 --workers 4 >"$load_out_4"
diff -u "$load_out_1" "$load_out_4" || {
    echo "ci: load report differs between 1 and 4 workers" >&2
    exit 1
}
grep -q 'soundness oracle: PASS' "$load_out_1" || {
    echo "ci: load soundness oracle did not pass" >&2
    exit 1
}
grep -q '"violations": 0,' "$load_json" || {
    echo "ci: load JSON block reports violations" >&2
    exit 1
}

# SMP explorer gate (DESIGN.md §14): the which-core scenario set —
# cross-core wakes, IPI-vs-IRQ races, mid-revoke shootdowns, on 2 and 4
# cores — must hold every oracle (zero counterexamples, including the
# idle-core-kicked lost-wakeup invariant) while genuinely branching on
# the which-core axis, and must render byte-identical stdout from two
# separate processes at 1 and 4 workers. JSON goes to a scratch path:
# the committed explore_smp block of BENCH_sweep.json stays as recorded.
smp_json="$(mktemp)"
smp_out_1="$(mktemp)"
smp_out_4="$(mktemp)"
trap 'rm -f "$explore_smoke_json" "$explore_json" "$explore_off" "$explore_por_1" "$explore_por_4" "$explore_rebuild" "$bench_json" "$load_out_1" "$load_out_4" "$load_json" "$smp_json" "$smp_out_1" "$smp_out_4"' EXIT
RT_BENCH_OUT="$smp_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --smp --depth 6 --por sleep --workers 1 >"$smp_out_1" 2>/dev/null
RT_BENCH_OUT="$smp_json" cargo run --release -q -p rt-bench --bin repro -- \
    explore --smp --depth 6 --por sleep --workers 4 >"$smp_out_4" 2>/dev/null
diff -u "$smp_out_1" "$smp_out_4" || {
    echo "ci: SMP explore report differs between 1 and 4 workers" >&2
    exit 1
}
awk '
    /interleavings=/ {
        n++
        inter = -1; cex = -1
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (kv[1] == "interleavings") inter = kv[2] + 0
                else if (kv[1] == "counterexamples") cex = kv[2] + 0
            }
        }
        if (cex != 0) { print "ci: SMP explorer counterexample on line: " $0; bad = 1 }
        if (inter <= 1) { print "ci: SMP scenario did not branch on the which-core axis: " $0; bad = 1 }
    }
    END {
        if (n < 4) { print "ci: expected >= 4 SMP scenario lines, saw " n; bad = 1 }
        exit bad
    }
' "$smp_out_4"
grep -q '"explore_smp": {' "$smp_json" || {
    echo "ci: explore --smp did not write the explore_smp JSON block" >&2
    exit 1
}

cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
