#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repo root.
set -euo pipefail

cargo build --release
cargo test -q

# Exercise the parallel analysis path (worker pool + shared cache) in the
# integration suite: the golden and differential tests must hold when the
# env caps the pool at 2 workers.
RT_JOBS=2 cargo test -q -p rt-tests --test goldens --test batch_differential

# Golden-output check: the repro binary's rendered tables must match the
# checked-in goldens byte for byte (any worker count; 4 covers stealing).
cargo run --release -q -p rt-bench --bin repro -- table1 --jobs 4 | diff -u tests/goldens/table1.txt -
cargo run --release -q -p rt-bench --bin repro -- table2 --jobs 4 | diff -u tests/goldens/table2.txt -
cargo run --release -q -p rt-bench --bin repro -- fig9 --reps 2 --jobs 4 | diff -u tests/goldens/fig9.txt -
cargo run --release -q -p rt-bench --bin repro -- l2lock --reps 2 --jobs 4 | diff -u tests/goldens/l2lock.txt -

# Explorer smoke gate: at depth 6 every scenario must genuinely branch
# (strictly more interleavings than preemption-point decision sites) and
# every oracle must hold (zero counterexamples) on every explored path.
cargo run --release -q -p rt-bench --bin repro -- explore --depth 6 --jobs 2 | awk '
    /interleavings=/ {
        n++
        inter = -1; pts = -1; cex = -1
        for (i = 1; i <= NF; i++) {
            if (split($i, kv, "=") == 2) {
                if (kv[1] == "interleavings") inter = kv[2] + 0
                else if (kv[1] == "preempt-pts") pts = kv[2] + 0
                else if (kv[1] == "counterexamples") cex = kv[2] + 0
            }
        }
        if (cex != 0) { print "ci: explorer counterexample on line: " $0; bad = 1 }
        if (inter <= pts) { print "ci: scenario did not branch: " $0; bad = 1 }
    }
    END {
        if (n < 5) { print "ci: expected >= 5 explorer scenario lines, saw " n; bad = 1 }
        exit bad
    }
'

# Bench smoke pass: the incremental ILP path must actually engage. The run
# writes its JSON to a scratch path (committed BENCH_sweep.json stays as
# recorded), then we assert the structure memo absorbed the cost-config
# axis (hit rate > 0.5) and that every batch report matched serial.
bench_json="$(mktemp)"
trap 'rm -f "$bench_json"' EXIT
RT_BENCH_OUT="$bench_json" cargo run --release -q -p rt-bench --bin repro -- bench >/dev/null
grep -q '"bit_identical_to_serial": true' "$bench_json" || {
    echo "ci: bench sweep diverged from serial analyze" >&2
    exit 1
}
structure_rate=$(sed -n 's/.*"ilp_structure": .*"hit_rate": \([0-9.]*\).*/\1/p' "$bench_json")
awk -v r="$structure_rate" 'BEGIN { exit !(r > 0.5) }' || {
    echo "ci: ilp_structure hit rate $structure_rate <= 0.5" >&2
    exit 1
}

cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
