#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repo root.
set -euo pipefail

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
