#!/usr/bin/env bash
# Tier-1 gate plus lints. Run from the repo root.
set -euo pipefail

cargo build --release
cargo test -q

# Exercise the parallel analysis path (worker pool + shared cache) in the
# integration suite: the golden and differential tests must hold when the
# env caps the pool at 2 workers.
RT_JOBS=2 cargo test -q -p rt-tests --test goldens --test batch_differential

# Golden-output check: the repro binary's rendered tables must match the
# checked-in goldens byte for byte (any worker count; 4 covers stealing).
cargo run --release -q -p rt-bench --bin repro -- table1 --jobs 4 | diff -u tests/goldens/table1.txt -
cargo run --release -q -p rt-bench --bin repro -- table2 --jobs 4 | diff -u tests/goldens/table2.txt -

cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
