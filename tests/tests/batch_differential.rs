//! Differential test of the parallel analysis pipeline: for *random*
//! (entry point, configuration) job lists — duplicates, random order,
//! every config knob fuzzed — `analyze_batch_with` over a shared cache
//! and a multi-worker pool must return, position by position, reports
//! identical to sequential uncached `analyze` calls. Identical down to
//! the per-bucket breakdowns and the worst-path listing, because the
//! golden-file guarantee ("`repro` output is byte-identical for any
//! worker count") rests on exactly this equivalence.

use proptest::prelude::*;
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_pool::Pool;
use rt_wcet::{
    analyze, analyze_batch_bounds_with, analyze_batch_with, AnalysisCache, AnalysisConfig,
};

fn arb_entry() -> impl Strategy<Value = EntryPoint> {
    prop_oneof![
        Just(EntryPoint::Syscall),
        Just(EntryPoint::Undefined),
        Just(EntryPoint::PageFault),
        Just(EntryPoint::Interrupt),
    ]
}

fn arb_config() -> impl Strategy<Value = AnalysisConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(before, l2, pinning, locked, constraints)| AnalysisConfig {
                kernel: if before {
                    KernelConfig::before()
                } else {
                    KernelConfig::after()
                },
                l2,
                pinning,
                l2_kernel_locked: locked,
                manual_constraints: constraints,
            },
        )
}

fn arb_jobs() -> impl Strategy<Value = Vec<(EntryPoint, AnalysisConfig)>> {
    // Cheap entry points dominate the strategy space; the expensive
    // syscall graphs still appear but the test stays tractable.
    proptest::collection::vec((arb_entry(), arb_config()), 1..6)
}

/// A random sample (with duplicates and shuffled order) of the fleet
/// generator's job space: raw indices, reduced modulo the fleet length.
fn arb_fleet_sample() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(any::<usize>(), 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn fleet_batch_is_identical_at_one_and_max_workers_and_to_serial(picks in arb_fleet_sample()) {
        // The PR 3 differential, extended to the generated config space:
        // sampled fleet jobs (full BoundParams axis included) run at 1
        // worker and at an oversubscribed worker count, each with a fresh
        // cache, and both must match serial uncached analysis bit for bit.
        let fleet = rt_bench::sweep::fleet_jobs(usize::MAX);
        let jobs: Vec<_> = picks.iter().map(|ix| fleet[ix % fleet.len()]).collect();
        let one = analyze_batch_bounds_with(&jobs, &Pool::new(1), &AnalysisCache::new());
        let many = analyze_batch_bounds_with(&jobs, &Pool::new(8), &AnalysisCache::new());
        prop_assert_eq!(one.len(), jobs.len());
        for (i, (entry, cfg, bounds)) in jobs.iter().enumerate() {
            let serial = rt_wcet::analysis::analyze_with_bounds(*entry, cfg, bounds);
            for got in [&one[i], &many[i]] {
                prop_assert_eq!(serial.cycles, got.cycles, "{:?}/{:?}/{:?}", entry, cfg, bounds);
                prop_assert_eq!(serial.us.to_bits(), got.us.to_bits());
                prop_assert_eq!(&serial.breakdown, &got.breakdown);
                prop_assert_eq!(&serial.worst_path, &got.worst_path);
                prop_assert_eq!(&serial.trace, &got.trace);
                prop_assert_eq!(serial.ilp_vars, got.ilp_vars);
                prop_assert_eq!(serial.ilp_constraints, got.ilp_constraints);
            }
        }
    }

    #[test]
    fn batch_reports_equal_sequential_analyze(jobs in arb_jobs()) {
        let cache = AnalysisCache::new();
        let pool = Pool::new(3);
        let batch = analyze_batch_with(&jobs, &pool, &cache);
        prop_assert_eq!(batch.len(), jobs.len());
        for ((entry, cfg), b) in jobs.iter().zip(batch.iter()) {
            let a = analyze(*entry, cfg);
            prop_assert_eq!(a.cycles, b.cycles, "{:?}/{:?}", entry, cfg);
            prop_assert_eq!(a.us.to_bits(), b.us.to_bits());
            prop_assert_eq!(a.breakdown, b.breakdown);
            prop_assert_eq!(&a.worst_path, &b.worst_path);
            prop_assert_eq!(&a.trace, &b.trace);
            prop_assert_eq!(a.ilp_vars, b.ilp_vars);
            prop_assert_eq!(a.ilp_constraints, b.ilp_constraints);
        }
    }
}

#[test]
fn resolve_path_covers_every_config_variant_of_a_structure() {
    // Deterministic companion to the proptest: every one of the 2^4 cost /
    // constraint combinations of two entry points goes through one shared
    // cache — so all variants of an (entry, manual) class re-solve the same
    // seeded ILP structure — and each must equal its uncached cold solve.
    let cache = AnalysisCache::new();
    let entries = [EntryPoint::Interrupt, EntryPoint::Undefined];
    let mut jobs = Vec::new();
    for e in entries {
        for l2 in [false, true] {
            for pinning in [false, true] {
                for locked in [false, true] {
                    for manual in [false, true] {
                        jobs.push((
                            e,
                            AnalysisConfig {
                                kernel: KernelConfig::after(),
                                l2,
                                pinning,
                                l2_kernel_locked: locked,
                                manual_constraints: manual,
                            },
                        ));
                    }
                }
            }
        }
    }
    let batch = analyze_batch_with(&jobs, &Pool::new(3), &cache);
    for ((entry, cfg), b) in jobs.iter().zip(batch.iter()) {
        let a = analyze(*entry, cfg);
        assert_eq!(a.cycles, b.cycles, "{entry:?}/{cfg:?}");
        assert_eq!(a.breakdown, b.breakdown, "{entry:?}/{cfg:?}");
        assert_eq!(a.worst_path, b.worst_path, "{entry:?}/{cfg:?}");
        assert_eq!(a.trace, b.trace, "{entry:?}/{cfg:?}");
    }
    let s = cache.stats();
    assert_eq!(
        s.ilp_structures.builds, 4,
        "2 entries x 2 manual-constraint settings: {s:?}"
    );
    assert_eq!(s.resolve.resolves, s.reports.builds);
    assert!(
        s.ilp_structures.hit_rate() > 0.5,
        "structure memo must absorb the cost-config axis: {s:?}"
    );
}

#[test]
fn duplicate_heavy_batch_is_deterministic_across_worker_counts() {
    // The same job list, duplicates included, through 1-, 2- and
    // 5-worker pools and independent caches: every run must agree with
    // every other bit for bit.
    let cfg = AnalysisConfig {
        kernel: KernelConfig::after(),
        l2: false,
        pinning: false,
        l2_kernel_locked: false,
        manual_constraints: true,
    };
    let jobs: Vec<_> = [
        EntryPoint::Interrupt,
        EntryPoint::PageFault,
        EntryPoint::Interrupt,
        EntryPoint::Undefined,
        EntryPoint::Interrupt,
        EntryPoint::PageFault,
    ]
    .into_iter()
    .map(|e| (e, cfg))
    .collect();
    let runs: Vec<_> = [1usize, 2, 5]
        .into_iter()
        .map(|w| analyze_batch_with(&jobs, &Pool::new(w), &AnalysisCache::new()))
        .collect();
    for other in &runs[1..] {
        for (a, b) in runs[0].iter().zip(other.iter()) {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.breakdown, b.breakdown);
            assert_eq!(a.worst_path, b.worst_path);
            assert_eq!(a.trace, b.trace);
        }
    }
}
