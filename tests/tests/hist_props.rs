//! Property tests for the load engine's histogram: the quantile error
//! bound and the merge algebra hold for *arbitrary* sample sets, not
//! just the unit-test fixtures in `crates/load/src/hist.rs`. These are
//! the two facts the byte-identity argument leans on: merge order can't
//! matter, and quantiles can't understate.

use proptest::prelude::*;
use rt_load::hist::{Hist, SUB_BUCKETS};

fn hist_of(samples: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quantile estimates never understate, and overstate by less than
    /// one sub-bucket width (relative error ≤ 1/SUB_BUCKETS).
    #[test]
    fn quantile_error_bound_holds(
        mut samples in proptest::collection::vec(0u64..2_000_000_000, 1..400),
        num in 1u64..1000,
    ) {
        let h = hist_of(&samples);
        samples.sort_unstable();
        let den = 1000u64;
        let rank = ((samples.len() as u64 * num).div_ceil(den)).max(1) as usize;
        let exact = samples[rank - 1];
        let est = h.quantile(num, den);
        prop_assert!(est >= exact, "p{}/1000: {} < exact {}", num, est, exact);
        prop_assert!(
            est - exact <= exact / SUB_BUCKETS + 1,
            "p{}/1000: est {} vs exact {}", num, est, exact
        );
    }

    /// Merging is associative and commutative, and exact aggregates
    /// (count/min/max/mean) match a flat recording of all samples.
    #[test]
    fn merge_algebra_holds(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a+b)+c == a+(b+c)
        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // a+b == b+a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // Merge of parts == flat recording of the whole.
        let mut flat: Vec<u64> = a.clone();
        flat.extend(&b);
        flat.extend(&c);
        prop_assert_eq!(&ab_c, &hist_of(&flat));
        prop_assert_eq!(ab_c.count(), flat.len() as u64);
        if !flat.is_empty() {
            prop_assert_eq!(ab_c.min(), *flat.iter().min().unwrap());
            prop_assert_eq!(ab_c.max(), *flat.iter().max().unwrap());
        }
    }

    /// `samples_above` is zero exactly when no sample exceeds the
    /// threshold — the property the soundness report relies on.
    #[test]
    fn samples_above_agrees_with_max(
        samples in proptest::collection::vec(0u64..10_000_000, 1..200),
        threshold in 0u64..10_000_000,
    ) {
        let h = hist_of(&samples);
        let above = h.samples_above(threshold);
        prop_assert_eq!(above == 0, h.max() <= threshold);
    }
}
