//! SMP which-core exploration differentials (DESIGN.md §14): the
//! explorer's new decision axis — *which core's* thread steps next, and
//! which core a routed arrival lands on — must inherit every determinism
//! and reduction contract the single-core engine makes.
//!
//! Pinned here:
//!
//! * SMP scenario searches are byte-identical at 1, 2 and 4 workers,
//!   with POR and snapshot-forking on — the same contract the
//!   single-core report makes — and find no counterexamples on the
//!   unmodified kernel (every observed IRQ response within the
//!   interference-aware bound, every SMP invariant holding at every
//!   explored interleaving).
//! * Sleep-set reduction with core-id tokens preserves the reachable
//!   canonical-state set exactly, as on single-core scenarios.
//! * Fork-vs-rebuild identity carries over: cadence 0 (rebuild), 1 and
//!   4 render byte-identically.
//! * The seeded lost-IPI bug — cross-core wakes that enqueue remotely
//!   but never kick the target — is caught via the
//!   `smp-idle-core-kicked` invariant, with a minimized trace that
//!   replays to the same violation on a fresh kernel.

use rt_explore::scenario::{by_name, smp_all};
use rt_explore::{
    explore, explore_with_states, render_line, replay, ExploreConfig, PorMode, SeededBug,
};
use rt_pool::Pool;

fn cfg(depth: usize, por: PorMode, snapshot_every: usize) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        por,
        snapshot_every,
        ..ExploreConfig::default()
    }
}

/// Every SMP scenario explores clean (no counterexample: latency within
/// the SMP margin-widened bound, invariants hold everywhere) and renders
/// byte-identically at any worker count, expanding identical
/// canonical-state sets.
#[test]
fn smp_scenarios_explore_clean_and_deterministically() {
    for sc in smp_all() {
        let c = cfg(6, PorMode::Sleep, 4);
        let (base, base_states) = explore_with_states(&sc, &c, &Pool::new(1));
        assert!(
            base.counterexample.is_none(),
            "{}: {:?}",
            sc.name,
            base.counterexample
        );
        assert!(!base.capped, "{}: capped", sc.name);
        assert!(base.interleavings > 1, "{}: nothing explored", sc.name);
        let render = render_line(&base);
        for workers in [2usize, 4] {
            let (rep, states) = explore_with_states(&sc, &c, &Pool::new(workers));
            assert_eq!(
                render,
                render_line(&rep),
                "{}: report diverged at {workers} workers",
                sc.name
            );
            assert_eq!(
                base_states, states,
                "{}: state sets diverged at {workers} workers",
                sc.name
            );
        }
    }
}

/// Sleep-set reduction with per-core scheduler tokens skips transitions,
/// never states: the reduced search expands exactly the unreduced
/// canonical-state set on every SMP scenario, in no more runs.
#[test]
fn smp_sleep_sets_preserve_visited_states() {
    for sc in smp_all() {
        let pool = Pool::new(2);
        let (off, off_states) = explore_with_states(&sc, &cfg(5, PorMode::Off, 4), &pool);
        let (sleep, sleep_states) = explore_with_states(&sc, &cfg(5, PorMode::Sleep, 4), &pool);
        assert!(!off.capped && !sleep.capped, "{}: capped", sc.name);
        assert_eq!(
            off_states, sleep_states,
            "{}: reachable-state sets diverged",
            sc.name
        );
        assert_eq!(
            off.counterexample.is_some(),
            sleep.counterexample.is_some(),
            "{}: verdicts diverged",
            sc.name
        );
        assert!(
            sleep.interleavings <= off.interleavings,
            "{}: reduction executed more runs",
            sc.name
        );
    }
}

/// Snapshot-forked SMP searches (the per-core machine state rides in the
/// same `KernelSnapshot`) render byte-identically to rebuild-from-boot.
#[test]
fn smp_fork_and_rebuild_render_identically() {
    for sc in smp_all() {
        let rebuilt = render_line(&explore(&sc, &cfg(5, PorMode::Sleep, 0), &Pool::new(1)));
        for every in [1usize, 4] {
            let forked = render_line(&explore(&sc, &cfg(5, PorMode::Sleep, every), &Pool::new(4)));
            assert_eq!(
                rebuilt, forked,
                "{} (every={every}): renders diverged",
                sc.name
            );
        }
    }
}

/// The seeded lost-IPI bug is found (only) by exploring the cross-core
/// interleavings, at every worker count with byte-identical reports, and
/// its minimized trace replays to the same `smp-idle-core-kicked`
/// violation on a fresh kernel with no snapshot in sight.
#[test]
fn seeded_lost_ipi_caught_with_replayable_minimized_trace() {
    let sc = by_name("smp-ep-delete").expect("scenario");
    let mut bugged = cfg(8, PorMode::Sleep, 1);
    bugged.seeded_bug = Some(SeededBug::LostIpi);
    let baseline = format!("{:?}", explore(&sc, &bugged, &Pool::new(1)));
    for workers in [2usize, 4] {
        assert_eq!(
            baseline,
            format!("{:?}", explore(&sc, &bugged, &Pool::new(workers))),
            "report diverged at {workers} workers"
        );
    }
    let rep = explore(&sc, &bugged, &Pool::new(4));
    let cex = rep.counterexample.expect("lost IPI not caught");
    assert!(
        cex.violations
            .iter()
            .any(|v| v.invariant == "smp-idle-core-kicked"),
        "wrong violation family: {:?}",
        cex.violations
    );
    // An empty minimized trace is legal (the all-defaults run already
    // fails); what matters is that it replays to the same violation.
    let r = replay(&sc, &cex.minimized, &bugged);
    assert!(
        r.violations
            .iter()
            .any(|v| v.invariant == "smp-idle-core-kicked"),
        "minimized trace does not replay: {:?}",
        r.violations
    );
    // The unmodified kernel passes the very same search.
    let clean = explore(&sc, &cfg(8, PorMode::Sleep, 1), &Pool::new(4));
    assert!(
        clean.counterexample.is_none(),
        "clean kernel failed: {:?}",
        clean.counterexample
    );
}
