//! Fork-vs-rebuild exploration differentials: the snapshot engine is an
//! *execution shortcut*, never a semantic one.
//!
//! A branch resumed from a [`rt_explore::snap`] point must be
//! indistinguishable — state for state, verdict for verdict, byte for
//! byte — from the same branch rebuilt from boot and replayed through
//! its whole prefix. These tests pin that contract on randomized
//! small-scope scenarios at several cadences and worker counts, keep
//! both seeded PR 5 bugs caught with forking on, and check the one
//! property the fork engine is explicitly *not* allowed to shortcut:
//! a minimized counterexample found by the forking search must replay
//! to the same violation on a fresh kernel, with no snapshot in sight.

use proptest::prelude::*;
use rt_explore::scenario::by_name;
use rt_explore::{
    explore, explore_with_states, randomized, render_line, replay, ExploreConfig, PorMode,
    RandomParams, SeededBug,
};
use rt_pool::Pool;

fn cfg(depth: usize, snapshot_every: usize) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        por: PorMode::Sleep,
        snapshot_every,
        ..ExploreConfig::default()
    }
}

fn arb_params() -> impl Strategy<Value = RandomParams> {
    (
        1u32..=3,
        0u32..=2,
        any::<bool>(),
        0u32..=2,
        0u32..=2,
        any::<bool>(),
    )
        .prop_map(
            |(senders, badge_every, with_driver, driver_budget, free_budget, revoke)| {
                RandomParams {
                    senders,
                    badge_every,
                    with_driver,
                    driver_budget,
                    free_budget,
                    revoke,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On randomized small scenarios, the forking engine (cadence 1 and
    /// 3) expands exactly the rebuild engine's sorted canonical-state
    /// set, agrees on every oracle verdict, and renders byte-identically
    /// at 1, 2 and 4 workers. Snapshot-engine statistics are the single
    /// permitted difference, and they are kept out of the render.
    #[test]
    fn fork_and_rebuild_agree_on_random_scenarios(p in arb_params()) {
        let sc = randomized(p);
        let rebuild_cfg = cfg(6, 0);
        let pool1 = Pool::new(1);
        let (rebuilt, rebuilt_states) = explore_with_states(&sc, &rebuild_cfg, &pool1);
        let rebuilt_render = render_line(&rebuilt);
        for every in [1usize, 3] {
            let fork_cfg = cfg(6, every);
            for workers in [1usize, 2, 4] {
                let pool = Pool::new(workers);
                let (forked, forked_states) = explore_with_states(&sc, &fork_cfg, &pool);
                prop_assert_eq!(
                    &rebuilt_states,
                    &forked_states,
                    "{} (every={}, workers={}): canonical-state sets diverged",
                    &sc.name,
                    every,
                    workers
                );
                prop_assert_eq!(
                    &rebuilt_render,
                    &render_line(&forked),
                    "{} (every={}, workers={}): renders diverged",
                    &sc.name,
                    every,
                    workers
                );
                prop_assert_eq!(
                    rebuilt.counterexample.as_ref().map(|c| &c.minimized),
                    forked.counterexample.as_ref().map(|c| &c.minimized),
                    "{} (every={}, workers={}): minimized traces diverged",
                    &sc.name,
                    every,
                    workers
                );
            }
        }
    }
}

/// Both seeded PR 5 bugs stay caught with forking on, the minimized
/// lex-min trace matches the rebuild engine's exactly, and the forked
/// report is byte-identical across worker counts.
#[test]
fn seeded_bugs_caught_with_forking_at_every_worker_count() {
    for (name, bug, family) in [
        ("badged-revoke", SeededBug::AbortSkip, "abort-"),
        ("ep-delete", SeededBug::DropRunnable, ""),
    ] {
        let sc = by_name(name).expect("scenario");
        let mut fork_cfg = cfg(8, 1);
        fork_cfg.seeded_bug = Some(bug);
        let mut rebuild_cfg = cfg(8, 0);
        rebuild_cfg.seeded_bug = Some(bug);

        let rebuilt = explore(&sc, &rebuild_cfg, &Pool::new(1));
        let baseline = format!("{:?}", explore(&sc, &fork_cfg, &Pool::new(1)));
        for workers in [2, 4] {
            let rep = explore(&sc, &fork_cfg, &Pool::new(workers));
            assert_eq!(
                baseline,
                format!("{rep:?}"),
                "{name}: forked report diverged at {workers} workers"
            );
        }
        let rep = explore(&sc, &fork_cfg, &Pool::new(4));
        let cex = rep
            .counterexample
            .unwrap_or_else(|| panic!("{name}: seeded bug not found with forking on"));
        assert!(
            cex.violations
                .iter()
                .any(|v| v.invariant.starts_with(family)),
            "{name}: unexpected violations {:?}",
            cex.violations
        );
        let rebuilt_cex = rebuilt
            .counterexample
            .expect("rebuild engine missed the bug");
        assert_eq!(
            rebuilt_cex.minimized, cex.minimized,
            "{name}: forked and rebuilt minimized traces diverged"
        );
    }
}

/// A minimized counterexample out of the *forking* search is a complete,
/// self-contained reproduction: replaying it on a fresh kernel — always
/// the rebuild-from-boot path, snapshots never involved — re-finds the
/// same violation.
#[test]
fn forked_counterexample_replays_from_boot() {
    let sc = by_name("ep-delete").expect("scenario");
    let mut c = cfg(8, 1);
    c.seeded_bug = Some(SeededBug::DropRunnable);
    let rep = explore(&sc, &c, &Pool::new(2));
    let cex = rep.counterexample.expect("seeded bug not found");
    assert!(!cex.minimized.is_empty(), "empty minimized trace");
    let run = replay(&sc, &cex.minimized, &c);
    assert_eq!(
        cex.violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        run.violations
            .iter()
            .map(|v| v.invariant)
            .collect::<Vec<_>>(),
        "replay on a fresh kernel found different violations"
    );
    assert!(
        !run.violations.is_empty(),
        "minimized trace did not reproduce on a fresh kernel"
    );
}
