//! CFG-correspondence: every block trace the kernel actually executes must
//! be admitted by the analysis control-flow graph for that entry point —
//! i.e. the analysed program over-approximates the executed one, which is
//! what makes the computed bounds meaningful for this kernel (the paper
//! analyses the very binary it runs, §5).

use rt_hw::HwConfig;
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_kernel::kprog::Block;
use rt_kernel::syscall::Syscall;
use rt_wcet::kmodel::build_cfg;

/// Cuts a trace at exit-time interrupt service: once the kernel's exit
/// check finds a pending IRQ, the syscall *path* (in the paper's §5.2
/// sense) has ended and the interrupt path begins.
fn slice_at_exit_service(trace: &[Block]) -> &[Block] {
    for (i, w) in trace.windows(2).enumerate() {
        if w[0] == Block::KExitCheck && w[1] == Block::IrqGet {
            return &trace[..=i];
        }
    }
    trace
}

fn check(entry: EntryPoint, cfgk: KernelConfig, trace: &[Block]) {
    let sliced = slice_at_exit_service(trace);
    let g = build_cfg(entry, cfgk);
    if let Err(e) = g.admits_trace(sliced) {
        panic!("{entry:?}/{cfgk:?}: trace not admitted: {e}\ntrace: {sliced:?}");
    }
}

#[test]
fn worst_syscall_trace_admitted() {
    for cfgk in [KernelConfig::before(), KernelConfig::after()] {
        let mut w = rt_bench::workloads::WorstSyscall::new(cfgk, HwConfig::default());
        w.kernel.start_trace();
        let _ = w.kernel.handle_syscall(w.syscall());
        let trace = w.kernel.take_trace();
        assert!(
            trace.len() > 100,
            "expected a long trace, got {}",
            trace.len()
        );
        check(EntryPoint::Syscall, cfgk, &trace);
    }
}

#[test]
fn interrupt_trace_admitted() {
    for cfgk in [KernelConfig::before(), KernelConfig::after()] {
        let mut w = rt_bench::workloads::WorstInterrupt::new(cfgk, HwConfig::default());
        let now = w.kernel.machine.now();
        w.kernel.machine.irq.raise(rt_hw::IrqLine(4), now);
        w.kernel.start_trace();
        w.kernel.handle_interrupt();
        let trace = w.kernel.take_trace();
        check(EntryPoint::Interrupt, cfgk, &trace);
    }
}

#[test]
fn fault_traces_admitted() {
    for cfgk in [KernelConfig::before(), KernelConfig::after()] {
        let mut w = rt_bench::workloads::WorstFault::new(cfgk, HwConfig::default());
        w.kernel.start_trace();
        w.kernel.handle_page_fault(0x0040_0000);
        let trace = w.kernel.take_trace();
        check(EntryPoint::PageFault, cfgk, &trace);

        let mut w = rt_bench::workloads::WorstFault::new(cfgk, HwConfig::default());
        w.kernel.start_trace();
        w.kernel.handle_undefined();
        let trace = w.kernel.take_trace();
        check(EntryPoint::Undefined, cfgk, &trace);
    }
}

#[test]
fn fastpath_trace_admitted() {
    let (mut k, client, server, ep) = rt_kernel::testutil::boot_two_threads_one_ep();
    let epobj = rt_kernel::testutil::ep_object(&k, client, ep);
    k.objs.tcb_mut(server).state = rt_kernel::tcb::ThreadState::BlockedOnRecv { ep: epobj };
    rt_kernel::ep::ep_append(
        &mut k.objs,
        epobj,
        server,
        rt_kernel::ep::EpState::Receiving,
    );
    k.start_trace();
    let _ = k.handle_syscall(Syscall::Call {
        cptr: ep,
        len: 2,
        caps: vec![],
    });
    let trace = k.take_trace();
    assert!(trace.contains(&Block::FastpathCommit), "{trace:?}");
    check(EntryPoint::Syscall, KernelConfig::after(), &trace);
}

#[test]
fn retype_trace_admitted() {
    for cfgk in [KernelConfig::before(), KernelConfig::after()] {
        let (mut k, _task, ut, dest) =
            rt_bench::workloads::retype_kernel(cfgk, HwConfig::default(), 18);
        k.start_trace();
        let _ = k.handle_syscall(Syscall::Retype {
            untyped: ut,
            kind: rt_kernel::untyped::RetypeKind::Frame { size_bits: 12 },
            count: 4,
            dest_cnode: dest,
            dest_offset: 16,
        });
        let trace = k.take_trace();
        assert!(trace.contains(&Block::ClearLine));
        check(EntryPoint::Syscall, cfgk, &trace);
    }
}

#[test]
fn badged_abort_trace_admitted() {
    for cfgk in [KernelConfig::before(), KernelConfig::after()] {
        let (mut k, _server, cptr) =
            rt_bench::workloads::badged_queue_kernel(cfgk, HwConfig::default(), 24, 3);
        k.start_trace();
        let _ = k.handle_syscall(Syscall::Revoke { cptr });
        let trace = k.take_trace();
        assert!(trace.contains(&Block::AbortIter), "{trace:?}");
        check(EntryPoint::Syscall, cfgk, &trace);
    }
}

#[test]
fn preempted_retype_trace_ends_at_preemption_point() {
    // With an IRQ pending, the after-kernel's clear loop must unwind at
    // its first preemption point; the trace ends in the interrupt
    // handler, matching the §5.2 path definition.
    let (mut k, _task, ut, dest) =
        rt_bench::workloads::retype_kernel(KernelConfig::after(), HwConfig::default(), 20);
    let now = k.machine.now();
    k.machine.irq.raise(rt_hw::IrqLine(3), now);
    k.start_trace();
    let out = k.handle_syscall(Syscall::Retype {
        untyped: ut,
        kind: rt_kernel::untyped::RetypeKind::Frame { size_bits: 16 },
        count: 1,
        dest_cnode: dest,
        dest_offset: 16,
    });
    assert_eq!(out, rt_kernel::syscall::SyscallOutcome::Preempted);
    let trace = k.take_trace();
    let save_pos = trace
        .iter()
        .position(|&b| b == Block::PreemptSave)
        .expect("preemption point taken");
    // The syscall-path segment (up to and including PreemptSave) is a
    // path of the syscall CFG.
    check(
        EntryPoint::Syscall,
        KernelConfig::after(),
        &trace[..=save_pos],
    );
    // Work before the preemption point: exactly one 1 KiB chunk.
    let lines = trace[..save_pos]
        .iter()
        .filter(|&&b| b == Block::ClearLine)
        .count();
    assert_eq!(lines, 32, "one chunk per inter-preemption segment");
}
