//! System-level fuzzing: random user programs on random thread
//! populations, with random device-interrupt timing, under both kernel
//! configurations. After every run the full §2.2 invariant suite must
//! hold and the system must not have wedged (no step-limit abort, no
//! panic). This is the broad-spectrum safety net behind the targeted
//! tests: preemption points, restarts, queue surgery, deletion, retype
//! and IPC all interleave freely here.

use proptest::prelude::*;
use rt_hw::{HwConfig, IrqLine};
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::Syscall;
use rt_kernel::system::{Action, StopReason, System, ThreadScript};
use rt_kernel::untyped::RetypeKind;

/// Compact generator language for one user action. Cptr values index a
/// small, known set of caps installed at boot.
#[derive(Debug, Clone)]
enum FuzzAction {
    Compute(u16),
    Send { long: bool, block: bool },
    Call,
    Recv,
    ReplyRecv,
    Signal,
    Wait,
    Yield,
    Retype(u8),
    DeleteRetyped,
    RevokeBadged,
    PageFault,
    Undef,
    Pollute,
    SetPrio(u8, u8),
}

const EP_CPTR: u32 = 1;
const BADGED_CPTR: u32 = 2;
const NTFN_CPTR: u32 = 3;
const UT_CPTR: u32 = 4;
const ROOT_CPTR: u32 = 5;
const TCB_CPTR_BASE: u32 = 20;
const SCRATCH_SLOT: u32 = 40;

fn to_action(f: &FuzzAction, tid: u32) -> Action {
    match f {
        FuzzAction::Compute(c) => Action::Compute(*c as u64 + 1),
        FuzzAction::Send { long, block } => Action::Syscall(Syscall::Send {
            cptr: EP_CPTR,
            len: if *long { 120 } else { 2 },
            caps: vec![],
            block: *block,
        }),
        FuzzAction::Call => Action::Syscall(Syscall::Call {
            cptr: BADGED_CPTR,
            len: 4,
            caps: vec![],
        }),
        FuzzAction::Recv => Action::Syscall(Syscall::Recv { cptr: EP_CPTR }),
        FuzzAction::ReplyRecv => Action::Syscall(Syscall::ReplyRecv {
            cptr: EP_CPTR,
            len: 2,
            caps: vec![],
        }),
        FuzzAction::Signal => Action::Syscall(Syscall::Signal { cptr: NTFN_CPTR }),
        FuzzAction::Wait => Action::Syscall(Syscall::Wait { cptr: NTFN_CPTR }),
        FuzzAction::Yield => Action::Syscall(Syscall::Yield),
        FuzzAction::Retype(kind) => Action::Syscall(Syscall::Retype {
            untyped: UT_CPTR,
            kind: match kind % 4 {
                0 => RetypeKind::Endpoint,
                1 => RetypeKind::Tcb,
                2 => RetypeKind::Frame { size_bits: 12 },
                _ => RetypeKind::Notification,
            },
            count: 1 + (*kind as u32 % 3),
            dest_cnode: ROOT_CPTR,
            // Distinct slot ranges per thread so threads do not collide.
            dest_offset: SCRATCH_SLOT + tid * 24,
        }),
        FuzzAction::DeleteRetyped => Action::Syscall(Syscall::Delete {
            cptr: SCRATCH_SLOT + tid * 24,
        }),
        FuzzAction::RevokeBadged => Action::Syscall(Syscall::Revoke { cptr: BADGED_CPTR }),
        FuzzAction::SetPrio(which, prio) => Action::Syscall(Syscall::TcbSetPriority {
            tcb: TCB_CPTR_BASE + (*which as u32 % 4),
            prio: 5 + prio % 60,
        }),
        FuzzAction::PageFault => Action::PageFault(0x0060_0000 + tid * 0x1000),
        FuzzAction::Undef => Action::UndefInstr,
        FuzzAction::Pollute => Action::Pollute,
    }
}

fn fuzz_action() -> impl Strategy<Value = FuzzAction> {
    prop_oneof![
        (1u16..5000).prop_map(FuzzAction::Compute),
        (any::<bool>(), any::<bool>()).prop_map(|(long, block)| FuzzAction::Send { long, block }),
        Just(FuzzAction::Call),
        Just(FuzzAction::Recv),
        Just(FuzzAction::ReplyRecv),
        Just(FuzzAction::Signal),
        Just(FuzzAction::Wait),
        Just(FuzzAction::Yield),
        any::<u8>().prop_map(FuzzAction::Retype),
        Just(FuzzAction::DeleteRetyped),
        Just(FuzzAction::RevokeBadged),
        Just(FuzzAction::PageFault),
        Just(FuzzAction::Undef),
        Just(FuzzAction::Pollute),
        (any::<u8>(), any::<u8>()).prop_map(|(w, p)| FuzzAction::SetPrio(w, p)),
    ]
}

fn boot(cfg: KernelConfig, n_threads: u32) -> (Kernel, Vec<rt_kernel::obj::ObjId>) {
    let mut k = Kernel::new(cfg, HwConfig::default());
    let cnode = k.boot_cnode(10);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 22,
        guard: 0,
    };
    let ep = k.boot_endpoint();
    let ntfn = k.boot_ntfn();
    let ut = k.boot_untyped(20);
    let orig = SlotRef::new(cnode, EP_CPTR);
    insert_cap(
        &mut k.objs,
        orig,
        CapType::Endpoint {
            obj: ep,
            badge: Badge::NONE,
            rights: Rights::ALL,
        },
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, BADGED_CPTR),
        CapType::Endpoint {
            obj: ep,
            badge: Badge(9),
            rights: Rights::ALL,
        },
        Some(orig),
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, NTFN_CPTR),
        CapType::Notification {
            obj: ntfn,
            badge: Badge(1),
            rights: Rights::ALL,
        },
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, UT_CPTR),
        CapType::Untyped(ut),
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, ROOT_CPTR),
        root.clone(),
        None,
    );
    let fault_ep = k.boot_endpoint();
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 6),
        CapType::Endpoint {
            obj: fault_ep,
            badge: Badge::NONE,
            rights: Rights::ALL,
        },
        None,
    );
    let mut threads = Vec::new();
    for i in 0..n_threads {
        let t = k.boot_tcb(&format!("fuzz{i}"), 10 + (i % 3) as u8);
        k.objs.tcb_mut(t).cspace_root = root.clone();
        k.objs.tcb_mut(t).fault_handler = 6;
        insert_cap(
            &mut k.objs,
            SlotRef::new(cnode, TCB_CPTR_BASE + i),
            CapType::Tcb(t),
            None,
        );
        k.boot_resume(t);
        threads.push(t);
    }
    (k, threads)
}

/// Body of `random_systems_stay_consistent`, shared with the named replay
/// of the stored shrink in `proptest-regressions/tests/system_fuzz.txt`
/// (see `tests/tests/regressions.rs` for the seed-coverage meta test).
fn fuzz_case(
    scripts: &[Vec<FuzzAction>],
    irqs: &[(u64, u8)],
    timer: Option<u64>,
    before: bool,
) -> Result<(), TestCaseError> {
    let cfg = if before {
        KernelConfig::before()
    } else {
        KernelConfig::after()
    };
    let (mut k, threads) = boot(cfg, scripts.len() as u32);
    for (at, line) in irqs {
        k.irq_table.issue(*line);
        k.machine.irq.schedule(*at, IrqLine(*line));
    }
    let mut sys = System::new(k);
    for (i, script) in scripts.iter().enumerate() {
        let actions: Vec<Action> = script
            .iter()
            .map(|f| to_action(f, i as u32))
            .chain(std::iter::once(Action::Stop))
            .collect();
        sys.set_script(threads[i], ThreadScript::once(actions));
    }
    if let Some(p) = timer {
        sys.enable_timer(p, 3_000_000);
    }
    let reason = sys.run(3_000_000);
    prop_assert_ne!(reason, StopReason::StepLimit, "system wedged");
    rt_kernel::invariants::assert_all(&sys.kernel);
    // Progress: at least the first action of some thread ran.
    prop_assert!(sys.kernel.machine.now() > 0);
    Ok(())
}

/// Replays the stored proptest shrink `scripts = [[Wait], [Wait]], irqs =
/// [], timer = None, before = false` (`cc b12bf4d4…` — a historical
/// all-threads-blocked idle hang) as a plain, deterministic tier-1 test.
#[test]
fn regression_two_blocked_waiters() {
    fuzz_case(
        &[vec![FuzzAction::Wait], vec![FuzzAction::Wait]],
        &[],
        None,
        false,
    )
    .expect("stored regression seed must pass");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_systems_stay_consistent(
        scripts in proptest::collection::vec(
            proptest::collection::vec(fuzz_action(), 1..25),
            2..5,
        ),
        irqs in proptest::collection::vec((1u64..2_000_000, 1u8..8), 0..10),
        timer in proptest::option::of(10_000u64..200_000),
        before in any::<bool>(),
    ) {
        fuzz_case(&scripts, &irqs, timer, before)?;
    }
}
