//! Meta test over `proptest-regressions/`: every stored `cc <hash>` seed
//! must have a **named, deterministic tier-1 replay** somewhere in the
//! test suite. The vendored proptest stub does not read regression files
//! itself (the real crate replays them before generating novel cases), so
//! without this check a stored shrink would silently stop being
//! exercised. Adding a new seed file therefore forces adding a named
//! replay test and registering it here.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Seeds with a named replay: (file relative to `proptest-regressions/`,
/// hash, replaying test). The third column is documentation — the compile
/// guarantee is the named test existing in the listed file.
const COVERED: &[(&str, &str, &str)] = &[
    (
        "tests/preemption_safety.txt",
        "06ce83b232922f151feb2e0d5505ea5dffe71cdc9633e7447172a86448127a7c",
        "preemption_safety::regression_retype_size12_no_irqs",
    ),
    (
        "tests/system_fuzz.txt",
        "b12bf4d4520c013a1873d72f59f846c7374d0599e28af26bff45c815f6ca2f7a",
        "system_fuzz::regression_two_blocked_waiters",
    ),
];

fn regressions_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../proptest-regressions")
}

fn collect(dir: &Path, root: &Path, out: &mut BTreeSet<(String, String)>) {
    for entry in fs::read_dir(dir).expect("read proptest-regressions") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "txt") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .into_owned();
            for line in fs::read_to_string(&path).expect("read seed file").lines() {
                if let Some(rest) = line.strip_prefix("cc ") {
                    let hash = rest.split_whitespace().next().unwrap_or("").to_string();
                    out.insert((rel.clone(), hash));
                }
            }
        }
    }
}

#[test]
fn every_stored_seed_has_a_named_replay() {
    let root = regressions_root();
    let mut stored = BTreeSet::new();
    collect(&root, &root, &mut stored);
    assert!(!stored.is_empty(), "no seeds found under {root:?}");
    let covered: BTreeSet<(String, String)> = COVERED
        .iter()
        .map(|(f, h, _)| (f.to_string(), h.to_string()))
        .collect();
    for (file, hash) in &stored {
        assert!(
            covered.contains(&(file.clone(), hash.clone())),
            "seed `cc {hash}` in proptest-regressions/{file} has no named \
             replay test — add one and register it in tests/tests/regressions.rs"
        );
    }
    for (file, hash) in &covered {
        assert!(
            stored.contains(&(file.clone(), hash.clone())),
            "tests/tests/regressions.rs lists `cc {hash}` for {file}, but the \
             seed file no longer contains it — remove the stale entry"
        );
    }
}
