//! Edge cases of the §3.1 wake/direct-switch rules: who runs after an IPC
//! wake depends on priorities and on whether the waker is about to block,
//! and the run queue must end up exactly right in every combination.

use rt_hw::HwConfig;
use rt_kernel::ep::{ep_append, EpState};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig, SchedKind};
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::tcb::ThreadState;
use rt_kernel::testutil::{boot_two_threads_one_ep_cfg, ep_object};

fn boot_with(
    sched: SchedKind,
    client_prio: u8,
    server_prio: u8,
) -> (Kernel, rt_kernel::obj::ObjId, rt_kernel::obj::ObjId, u32) {
    let cfg = KernelConfig {
        sched,
        fastpath: false,
        ..KernelConfig::after()
    };
    let (mut k, client, server, ep) = boot_two_threads_one_ep_cfg(cfg, HwConfig::default());
    k.objs.tcb_mut(client).prio = client_prio;
    k.objs.tcb_mut(server).prio = server_prio;
    (k, client, server, ep)
}

fn park_recv(k: &mut Kernel, t: rt_kernel::obj::ObjId, ep: rt_kernel::obj::ObjId) {
    k.objs.tcb_mut(t).state = ThreadState::BlockedOnRecv { ep };
    ep_append(&mut k.objs, ep, t, EpState::Receiving);
}

#[test]
fn call_direct_switches_to_equal_priority_receiver() {
    for sched in [SchedKind::Benno, SchedKind::BennoBitmap, SchedKind::Lazy] {
        let (mut k, client, server, epc) = boot_with(sched, 50, 50);
        let ep = ep_object(&k, client, epc);
        park_recv(&mut k, server, ep);
        let out = k.handle_syscall(Syscall::Call {
            cptr: epc,
            len: 1,
            caps: vec![],
        });
        assert_eq!(out, SyscallOutcome::Completed(Ok(())));
        assert_eq!(k.current(), server, "{sched:?}: caller yields, so >= wins");
        if sched != SchedKind::Lazy {
            assert!(
                !k.objs.tcb(server).in_runqueue,
                "{sched:?}: §3.1 — the directly-switched thread is never enqueued"
            );
        }
        invariants::assert_all(&k);
    }
}

#[test]
fn plain_send_does_not_yield_to_equal_priority() {
    for sched in [SchedKind::Benno, SchedKind::BennoBitmap] {
        let (mut k, client, server, epc) = boot_with(sched, 50, 50);
        let ep = ep_object(&k, client, epc);
        park_recv(&mut k, server, ep);
        let out = k.handle_syscall(Syscall::Send {
            cptr: epc,
            len: 1,
            caps: vec![],
            block: false,
        });
        assert_eq!(out, SyscallOutcome::Completed(Ok(())));
        // The sender keeps running (it did not block), the equal-priority
        // receiver is queued.
        assert_eq!(k.current(), client, "{sched:?}");
        assert!(k.objs.tcb(server).in_runqueue, "{sched:?}");
        invariants::assert_all(&k);
    }
}

#[test]
fn send_yields_to_higher_priority_receiver() {
    for sched in [SchedKind::Benno, SchedKind::BennoBitmap, SchedKind::Lazy] {
        let (mut k, client, server, epc) = boot_with(sched, 50, 60);
        let ep = ep_object(&k, client, epc);
        park_recv(&mut k, server, ep);
        let out = k.handle_syscall(Syscall::Send {
            cptr: epc,
            len: 1,
            caps: vec![],
            block: false,
        });
        assert_eq!(out, SyscallOutcome::Completed(Ok(())));
        assert_eq!(k.current(), server, "{sched:?}: higher priority preempts");
        // The displaced, still-runnable sender is re-entered in the run
        // queue (§3.1: "the preempted thread must be entered in the run
        // queue if it is not already there").
        assert!(k.objs.tcb(client).in_runqueue, "{sched:?}");
        invariants::assert_all(&k);
    }
}

#[test]
fn wake_of_lower_priority_receiver_just_enqueues() {
    for sched in [SchedKind::Benno, SchedKind::BennoBitmap] {
        let (mut k, client, server, epc) = boot_with(sched, 50, 40);
        let ep = ep_object(&k, client, epc);
        park_recv(&mut k, server, ep);
        let out = k.handle_syscall(Syscall::Call {
            cptr: epc,
            len: 1,
            caps: vec![],
        });
        assert_eq!(out, SyscallOutcome::Completed(Ok(())));
        // The caller blocked on the reply, so the scheduler runs and the
        // (only runnable) lower-priority server is chosen from the queue.
        assert_eq!(k.current(), server, "{sched:?}");
        assert_eq!(k.objs.tcb(client).state, ThreadState::BlockedOnReply);
        invariants::assert_all(&k);
    }
}

#[test]
fn benno_bitmap_and_benno_agree_on_current_after_ipc() {
    // The bitmap is an optimisation, not a policy change: the same wake
    // sequence must leave the same thread running under both.
    for (cp, sp) in [(10, 20), (20, 10), (15, 15)] {
        let mut currents = Vec::new();
        for sched in [SchedKind::Benno, SchedKind::BennoBitmap] {
            let (mut k, client, server, epc) = boot_with(sched, cp, sp);
            let ep = ep_object(&k, client, epc);
            park_recv(&mut k, server, ep);
            let _ = k.handle_syscall(Syscall::Call {
                cptr: epc,
                len: 1,
                caps: vec![],
            });
            let name = k.objs.tcb(k.current()).name.clone();
            currents.push(name);
            invariants::assert_all(&k);
        }
        assert_eq!(currents[0], currents[1], "prio pair ({cp},{sp})");
    }
}
