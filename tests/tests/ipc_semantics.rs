//! IPC semantics: message delivery, badge delivery, rights enforcement,
//! capability transfer through receive slots, call/reply pairing, and the
//! blocking/non-blocking variants — the user-visible contract of the
//! endpoint machinery whose worst case the paper bounds.

use rt_hw::HwConfig;
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::ep::{ep_append, EpState};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::{SysError, Syscall, SyscallOutcome};
use rt_kernel::tcb::ThreadState;
use rt_kernel::testutil::{boot_two_threads_one_ep_cfg, ep_object};

fn park_recv(k: &mut Kernel, t: rt_kernel::obj::ObjId, ep: rt_kernel::obj::ObjId) {
    k.objs.tcb_mut(t).state = ThreadState::BlockedOnRecv { ep };
    ep_append(&mut k.objs, ep, t, EpState::Receiving);
}

fn boot() -> (Kernel, rt_kernel::obj::ObjId, rt_kernel::obj::ObjId, u32) {
    // Disable the fastpath so the slowpath semantics are what is tested.
    let mut cfg = KernelConfig::after();
    cfg.fastpath = false;
    boot_two_threads_one_ep_cfg(cfg, HwConfig::default())
}

#[test]
fn message_words_and_badge_are_delivered() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    park_recv(&mut k, server, ep);
    // Mint a badged derivative of the endpoint cap at cptr 3.
    let out = k.handle_syscall(Syscall::Mint {
        src: ep_cptr,
        dest: 3,
        badge: Badge(0x55),
        rights: Rights::ALL,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    k.objs.tcb_mut(client).msg = vec![10, 20, 30];
    let out = k.handle_syscall(Syscall::Send {
        cptr: 3,
        len: 3,
        caps: vec![],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    let s = k.objs.tcb(server);
    assert_eq!(&s.msg[..3], &[10, 20, 30]);
    assert_eq!(s.recv_badge, Badge(0x55), "minted badge delivered");
    assert_eq!(s.msg_info.length, 3);
    invariants::assert_all(&k);
}

#[test]
fn send_requires_write_recv_requires_read() {
    let (mut k, client, _server, ep_cptr) = boot();
    // A read-only derivative cannot send; a write-only one cannot receive.
    for (slot, rights) in [(4u32, Rights::RECV), (5u32, Rights::SEND)] {
        let out = k.handle_syscall(Syscall::Mint {
            src: ep_cptr,
            dest: slot,
            badge: Badge::NONE,
            rights,
        });
        assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    }
    let out = k.handle_syscall(Syscall::Send {
        cptr: 4,
        len: 1,
        caps: vec![],
        block: false,
    });
    assert_eq!(out, SyscallOutcome::Completed(Err(SysError::Rights)));
    let out = k.handle_syscall(Syscall::Recv { cptr: 5 });
    assert_eq!(out, SyscallOutcome::Completed(Err(SysError::Rights)));
    assert_eq!(k.current(), client, "nothing blocked");
    invariants::assert_all(&k);
}

#[test]
fn nonblocking_send_fails_fast_when_no_receiver() {
    let (mut k, client, _server, ep_cptr) = boot();
    let out = k.handle_syscall(Syscall::Send {
        cptr: ep_cptr,
        len: 1,
        caps: vec![],
        block: false,
    });
    assert_eq!(out, SyscallOutcome::Completed(Err(SysError::WouldBlock)));
    assert!(k.objs.tcb(client).state.is_runnable());
}

#[test]
fn blocking_send_queues_until_receiver_arrives() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    k.objs.tcb_mut(client).msg = vec![7];
    let out = k.handle_syscall(Syscall::Send {
        cptr: ep_cptr,
        len: 1,
        caps: vec![],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(matches!(
        k.objs.tcb(client).state,
        ThreadState::BlockedOnSend { .. }
    ));
    assert_eq!(rt_kernel::ep::ep_len(&k.objs, ep), 1);
    // The server receives: the queued sender's message arrives and the
    // sender becomes runnable again.
    k.objs.tcb_mut(server).state = ThreadState::Running;
    k.force_current_for_test(server);
    let out = k.handle_syscall(Syscall::Recv { cptr: ep_cptr });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert_eq!(k.objs.tcb(server).msg[0], 7);
    assert!(k.objs.tcb(client).state.is_runnable());
    invariants::assert_all(&k);
}

#[test]
fn call_reply_pairs_threads() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    park_recv(&mut k, server, ep);
    k.objs.tcb_mut(client).msg = vec![1, 2];
    let out = k.handle_syscall(Syscall::Call {
        cptr: ep_cptr,
        len: 2,
        caps: vec![],
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert_eq!(k.current(), server, "direct switch to the server");
    assert_eq!(k.objs.tcb(client).state, ThreadState::BlockedOnReply);
    assert_eq!(k.objs.tcb(server).caller, Some(client));
    // Server replies; client resumes with the reply message.
    k.objs.tcb_mut(server).msg = vec![99];
    let out = k.handle_syscall(Syscall::Reply {
        len: 1,
        caps: vec![],
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(k.objs.tcb(client).state.is_runnable());
    assert_eq!(k.objs.tcb(client).msg[0], 99);
    assert_eq!(k.objs.tcb(server).caller, None);
    invariants::assert_all(&k);
}

#[test]
fn reply_to_nobody_is_a_noop() {
    let (mut k, _client, _server, _) = boot();
    let out = k.handle_syscall(Syscall::Reply {
        len: 0,
        caps: vec![],
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
}

#[test]
fn caps_transfer_into_the_receive_slot() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    // Receive-slot plumbing for the server: croot at cptr 6 (a cap to its
    // own root CNode), destination at cptr 7 (empty slot).
    let cnode = match k.objs.tcb(server).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 6),
        CapType::CNode {
            obj: cnode,
            guard_bits: 24,
            guard: 0,
        },
        None,
    );
    k.objs.tcb_mut(server).recv_slot_spec = Some((6, 7));
    park_recv(&mut k, server, ep);
    // The client grants a minted badge cap over the endpoint.
    let out = k.handle_syscall(Syscall::Mint {
        src: ep_cptr,
        dest: 8,
        badge: Badge(0xAB),
        rights: Rights::ALL,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    let out = k.handle_syscall(Syscall::Send {
        cptr: ep_cptr,
        len: 1,
        caps: vec![8],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    // The granted cap landed in slot 7 of the shared root CNode.
    match &k.objs.cnode(cnode).slot(7).cap {
        CapType::Endpoint { badge, .. } => assert_eq!(*badge, Badge(0xAB)),
        other => panic!("receive slot holds {other:?}"),
    }
    invariants::assert_all(&k);
}

#[test]
fn caps_dropped_without_grant_rights() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    let cnode = match k.objs.tcb(server).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 6),
        CapType::CNode {
            obj: cnode,
            guard_bits: 24,
            guard: 0,
        },
        None,
    );
    k.objs.tcb_mut(server).recv_slot_spec = Some((6, 7));
    park_recv(&mut k, server, ep);
    // A no-grant derivative of the endpoint cap.
    let out = k.handle_syscall(Syscall::Mint {
        src: ep_cptr,
        dest: 9,
        badge: Badge(1),
        rights: Rights {
            read: true,
            write: true,
            grant: false,
        },
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    let out = k.handle_syscall(Syscall::Send {
        cptr: 9,
        len: 1,
        caps: vec![ep_cptr],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(
        k.objs.cnode(cnode).slot(7).cap.is_null(),
        "no grant right: no cap transferred"
    );
    let _ = client;
    invariants::assert_all(&k);
}

#[test]
fn send_to_deactivated_endpoint_fails() {
    let (mut k, client, _server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    k.objs.ep_mut(ep).active = false;
    let out = k.handle_syscall(Syscall::Send {
        cptr: ep_cptr,
        len: 1,
        caps: vec![],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Err(SysError::Deactivated)));
}

#[test]
fn message_length_clamped_to_max() {
    let (mut k, client, server, ep_cptr) = boot();
    let ep = ep_object(&k, client, ep_cptr);
    park_recv(&mut k, server, ep);
    k.objs.tcb_mut(client).msg = (0..200).collect();
    let out = k.handle_syscall(Syscall::Send {
        cptr: ep_cptr,
        len: 500, // beyond MAX_MSG_WORDS
        caps: vec![],
        block: true,
    });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert_eq!(k.objs.tcb(server).msg_info.length, rt_kernel::MAX_MSG_WORDS);
    invariants::assert_all(&k);
}
