//! Properties of the static analysis itself: bounds must respond
//! *monotonically* to the model's knobs — more permissive system bounds,
//! a disabled pinning set, or a slower memory configuration can never
//! yield a smaller worst case. A violation would mean the analysis is
//! unsound somewhere.

use proptest::prelude::*;
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_wcet::analysis::analyze_with_bounds;
use rt_wcet::kmodel::BoundParams;
use rt_wcet::{analyze, AnalysisConfig};

fn acfg(l2: bool, pinning: bool) -> AnalysisConfig {
    AnalysisConfig {
        kernel: KernelConfig::after(),
        l2,
        pinning,
        l2_kernel_locked: false,
        manual_constraints: true,
    }
}

#[test]
fn pinning_never_raises_a_bound() {
    for e in EntryPoint::ALL {
        let unpinned = analyze(e, &acfg(false, false)).cycles;
        let pinned = analyze(e, &acfg(false, true)).cycles;
        assert!(pinned <= unpinned, "{e:?}: {pinned} > {unpinned}");
    }
}

#[test]
fn l2_lock_never_raises_a_bound() {
    for e in EntryPoint::ALL {
        let plain = analyze(e, &acfg(true, false)).cycles;
        let mut locked_cfg = acfg(true, false);
        locked_cfg.l2_kernel_locked = true;
        let locked = analyze(e, &locked_cfg).cycles;
        assert!(locked <= plain, "{e:?}: {locked} > {plain}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Componentwise-larger bound parameters give componentwise-larger (or
    /// equal) WCET bounds, checked on the fault entry point (the cheapest
    /// graph that uses the IPC parameters).
    #[test]
    fn bounds_are_monotone_in_parameters(
        decode_a in 1u64..16,
        decode_delta in 0u64..17,
        msg_a in 1u64..60,
        msg_delta in 0u64..61,
    ) {
        let small = BoundParams {
            decode_levels: decode_a,
            msg_words: msg_a,
            ..BoundParams::default()
        };
        let large = BoundParams {
            decode_levels: decode_a + decode_delta,
            msg_words: msg_a + msg_delta,
            ..BoundParams::default()
        };
        let cfg = acfg(false, false);
        let lo = analyze_with_bounds(EntryPoint::PageFault, &cfg, &small).cycles;
        let hi = analyze_with_bounds(EntryPoint::PageFault, &cfg, &large).cycles;
        prop_assert!(lo <= hi, "bounds not monotone: {lo} > {hi}");
    }
}

#[test]
fn closed_bounds_never_exceed_open_bounds() {
    let cfg = acfg(false, false);
    for kernel in [KernelConfig::before(), KernelConfig::after()] {
        let cfg = AnalysisConfig { kernel, ..cfg };
        for e in EntryPoint::ALL {
            let closed = analyze_with_bounds(e, &cfg, &BoundParams::closed()).cycles;
            let open = analyze_with_bounds(e, &cfg, &BoundParams::open()).cycles;
            assert!(closed <= open, "{e:?}/{kernel:?}: {closed} > {open}");
        }
    }
}

#[test]
fn manual_constraints_never_raise_the_bound() {
    // Constraints only *exclude* paths (§5.2); the constrained optimum
    // cannot exceed the raw one.
    for e in EntryPoint::ALL {
        let mut cfg = acfg(false, false);
        cfg.manual_constraints = false;
        let raw = analyze(e, &cfg).cycles;
        cfg.manual_constraints = true;
        let constrained = analyze(e, &cfg).cycles;
        assert!(constrained <= raw, "{e:?}: {constrained} > {raw}");
    }
}
