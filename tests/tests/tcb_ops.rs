//! Integration tests for the TCB management invocations: priority changes
//! (with bitmap maintenance, §3.2), configuration, suspend/resume, and
//! their interaction with scheduling.

use rt_hw::HwConfig;
use rt_kernel::cap::{insert_cap, CapType, SlotRef};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::tcb::ThreadState;

/// Boots a kernel where a manager thread (prio 100) holds TCB caps to two
/// worker threads at cptrs 10/11.
fn boot() -> (Kernel, rt_kernel::obj::ObjId, [rt_kernel::obj::ObjId; 2]) {
    let mut k = Kernel::new(KernelConfig::after(), HwConfig::default());
    let cnode = k.boot_cnode(8);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 24,
        guard: 0,
    };
    let manager = k.boot_tcb("manager", 100);
    let w0 = k.boot_tcb("w0", 20);
    let w1 = k.boot_tcb("w1", 30);
    for (i, w) in [w0, w1].into_iter().enumerate() {
        insert_cap(
            &mut k.objs,
            SlotRef::new(cnode, 10 + i as u32),
            CapType::Tcb(w),
            None,
        );
        k.objs.tcb_mut(w).cspace_root = root.clone();
    }
    insert_cap(&mut k.objs, SlotRef::new(cnode, 5), root.clone(), None);
    k.objs.tcb_mut(manager).cspace_root = root;
    k.objs.tcb_mut(manager).state = ThreadState::Running;
    k.force_current_for_test(manager);
    (k, manager, [w0, w1])
}

fn ok(k: &mut Kernel, sys: Syscall) {
    assert_eq!(k.handle_syscall(sys), SyscallOutcome::Completed(Ok(())));
}

#[test]
fn set_priority_requeues_and_maintains_bitmap() {
    let (mut k, _m, [w0, w1]) = boot();
    ok(&mut k, Syscall::TcbResume { tcb: 10 });
    ok(&mut k, Syscall::TcbResume { tcb: 11 });
    assert!(k.objs.tcb(w0).in_runqueue && k.objs.tcb(w1).in_runqueue);
    assert!(k.queues.bitmap.is_set(20) && k.queues.bitmap.is_set(30));
    // Move w0 from prio 20 to 50.
    ok(&mut k, Syscall::TcbSetPriority { tcb: 10, prio: 50 });
    assert_eq!(k.objs.tcb(w0).prio, 50);
    assert!(!k.queues.bitmap.is_set(20), "old priority bit cleared");
    assert!(k.queues.bitmap.is_set(50), "new priority bit set");
    assert_eq!(k.queues.head(50), Some(w0));
    invariants::assert_all(&k);
}

#[test]
fn raising_above_current_preempts() {
    let (mut k, manager, [w0, _w1]) = boot();
    ok(&mut k, Syscall::TcbResume { tcb: 10 });
    assert_eq!(k.current(), manager, "manager (prio 100) keeps the CPU");
    // Promote w0 above the manager: it must take over.
    ok(&mut k, Syscall::TcbSetPriority { tcb: 10, prio: 200 });
    assert_eq!(k.current(), w0, "promoted thread preempts");
    // The displaced manager is runnable and queued (§3.1).
    assert!(k.objs.tcb(manager).in_runqueue);
    invariants::assert_all(&k);
}

#[test]
fn configure_installs_cspace_and_fault_handler() {
    let (mut k, _m, [w0, _w1]) = boot();
    ok(
        &mut k,
        Syscall::TcbConfigure {
            tcb: 10,
            cspace_root: 5,
            fault_handler: 0x77,
        },
    );
    assert_eq!(k.objs.tcb(w0).fault_handler, 0x77);
    assert!(matches!(k.objs.tcb(w0).cspace_root, CapType::CNode { .. }));
    invariants::assert_all(&k);
}

#[test]
fn configure_rejects_non_cnode_root() {
    let (mut k, _m, _) = boot();
    let out = k.handle_syscall(Syscall::TcbConfigure {
        tcb: 10,
        cspace_root: 11, // a TCB cap, not a CNode
        fault_handler: 0,
    });
    assert_eq!(
        out,
        SyscallOutcome::Completed(Err(rt_kernel::syscall::SysError::InvalidCap))
    );
}

#[test]
fn suspend_resume_round_trip() {
    let (mut k, _m, [w0, _w1]) = boot();
    ok(&mut k, Syscall::TcbResume { tcb: 10 });
    assert!(k.objs.tcb(w0).state.is_runnable());
    ok(&mut k, Syscall::TcbSuspend { tcb: 10 });
    assert_eq!(k.objs.tcb(w0).state, ThreadState::Inactive);
    assert!(!k.objs.tcb(w0).in_runqueue);
    ok(&mut k, Syscall::TcbResume { tcb: 10 });
    assert!(k.objs.tcb(w0).state.is_runnable());
    invariants::assert_all(&k);
}

#[test]
fn lowering_current_yields_to_queued_thread() {
    let (mut k, manager, [w0, _w1]) = boot();
    // Manager holds its own TCB cap too.
    let cnode = match k.objs.tcb(manager).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 12),
        CapType::Tcb(manager),
        None,
    );
    ok(&mut k, Syscall::TcbResume { tcb: 10 });
    // Manager demotes itself below w0 (prio 20).
    ok(&mut k, Syscall::TcbSetPriority { tcb: 12, prio: 5 });
    assert_eq!(k.current(), w0, "queued thread takes over");
    invariants::assert_all(&k);
}
