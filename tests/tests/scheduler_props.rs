//! Property tests on the scheduler designs (§3.1–3.2): under random
//! operation sequences, the bitmap exactly mirrors the queues, the three
//! `chooseThread` implementations agree where their semantics overlap, and
//! Benno scheduling maintains its invariant.

use proptest::prelude::*;
use rt_kernel::obj::{ObjId, ObjKind, ObjStore};
use rt_kernel::sched::RunQueues;
use rt_kernel::tcb::{Tcb, ThreadState, TCB_SIZE_BITS};

#[derive(Debug, Clone)]
enum Op {
    Enqueue(u8, u8), // thread index, priority
    Dequeue(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..16, any::<u8>()).prop_map(|(t, p)| Op::Enqueue(t, p)),
            (0u8..16).prop_map(Op::Dequeue),
        ],
        1..120,
    )
}

fn setup(n: u8) -> (ObjStore, Vec<ObjId>) {
    let mut s = ObjStore::new();
    let tcbs = (0..n)
        .map(|i| {
            let id = s.insert(
                0x8000_0000 + i as u32 * 512,
                TCB_SIZE_BITS,
                ObjKind::Tcb(Tcb::new(&format!("t{i}"), 0)),
            );
            s.tcb_mut(id).state = ThreadState::Running;
            id
        })
        .collect();
    (s, tcbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitmap_reflects_queues_under_churn(ops in ops()) {
        let (mut s, tcbs) = setup(16);
        let mut q = RunQueues::new();
        for op in ops {
            match op {
                Op::Enqueue(t, p) => {
                    let id = tcbs[t as usize];
                    if !s.tcb(id).in_runqueue {
                        s.tcb_mut(id).prio = p;
                        q.enqueue(&mut s, id);
                    }
                }
                Op::Dequeue(t) => {
                    let id = tcbs[t as usize];
                    if s.tcb(id).in_runqueue {
                        q.dequeue(&mut s, id);
                    }
                }
            }
            // §3.2's invariant, at every step.
            for prio in 0..=255u8 {
                prop_assert_eq!(
                    q.bitmap.is_set(prio),
                    q.head(prio).is_some(),
                    "bitmap disagrees at prio {}",
                    prio
                );
            }
        }
    }

    #[test]
    fn bitmap_and_scan_choose_the_same_thread(ops in ops()) {
        let (mut s, tcbs) = setup(16);
        let mut q = RunQueues::new();
        for op in ops {
            match op {
                Op::Enqueue(t, p) => {
                    let id = tcbs[t as usize];
                    if !s.tcb(id).in_runqueue {
                        s.tcb_mut(id).prio = p;
                        q.enqueue(&mut s, id);
                    }
                }
                Op::Dequeue(t) => {
                    let id = tcbs[t as usize];
                    if s.tcb(id).in_runqueue {
                        q.dequeue(&mut s, id);
                    }
                }
            }
            // Fig. 3's scan and §3.2's bitmap agree on every state (queue
            // contains only runnable threads here, so lazy agrees too).
            let (scan, _) = q.choose_benno();
            prop_assert_eq!(q.choose_bitmap(), scan);
            let mut s2 = s.clone();
            let mut q2 = q.clone();
            let lazy = q2.choose_lazy(&mut s2);
            prop_assert_eq!(lazy.thread, scan);
            prop_assert_eq!(lazy.dequeued_blocked, 0);
        }
    }

    #[test]
    fn lazy_dequeues_exactly_the_blocked_prefix(
        blocked_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        // Queue 8 threads at one priority, block per mask, then choose:
        // lazy must dequeue exactly the blocked prefix up to the first
        // runnable thread.
        let (mut s, tcbs) = setup(8);
        let mut q = RunQueues::new();
        for id in tcbs.iter().take(8) {
            s.tcb_mut(*id).prio = 7;
            q.enqueue(&mut s, *id);
        }
        for (i, &b) in blocked_mask.iter().enumerate() {
            if b {
                s.tcb_mut(tcbs[i]).state = ThreadState::BlockedOnReply;
            }
        }
        let expected_prefix = blocked_mask.iter().take_while(|&&b| b).count();
        let choice = q.choose_lazy(&mut s);
        prop_assert_eq!(choice.dequeued_blocked as usize, expected_prefix);
        match choice.thread {
            Some(t) => {
                prop_assert_eq!(t, tcbs[expected_prefix]);
                prop_assert!(s.tcb(t).state.is_runnable());
            }
            None => prop_assert_eq!(expected_prefix, 8),
        }
    }
}
