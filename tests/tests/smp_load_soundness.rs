//! SMP soundness under adversarial load (DESIGN.md §14): with 2 and 4
//! simulated cores — every extra core running a pinned cache thrasher
//! that takes the big lock and dirties the shared L2 from the other side
//! — no observed interrupt response on the device cores may exceed the
//! interference-aware per-line bound
//! ([`rt_wcet::smp_irq_line_bounds`]). And the other direction of the
//! contract: at one core the SMP bound helper returns the single-core
//! bounds unchanged **to the cycle**, so the existing goldens and BENCH
//! blocks stand.

use std::sync::OnceLock;

use rt_load::LoadSpec;
use rt_pool::Pool;
use rt_wcet::{smp_irq_line_bounds, smp_latency_margin, AnalysisCache, AnalysisConfig, SmpParams};

fn cache() -> &'static AnalysisCache {
    static CACHE: OnceLock<AnalysisCache> = OnceLock::new();
    CACHE.get_or_init(AnalysisCache::new)
}

fn cfg() -> AnalysisConfig {
    AnalysisConfig::after_l2_off()
}

#[test]
fn n1_smp_bounds_are_the_single_core_bounds_to_the_cycle() {
    let spec = LoadSpec::standard(1, 100, 8, 1);
    let lines = spec.active_lines();
    let base = cache().irq_line_bounds(&cfg(), &lines);
    let smp1 = smp_irq_line_bounds(cache(), &cfg(), &lines, &SmpParams::new(1));
    assert_eq!(base, smp1, "N=1 must not move any bound by a single cycle");
}

#[test]
fn widened_bounds_are_base_plus_margin_per_line() {
    let spec = LoadSpec::standard(1, 100, 8, 1);
    let lines = spec.active_lines();
    let base = cache().irq_line_bounds(&cfg(), &lines);
    for cores in [2u8, 4] {
        let smp = SmpParams::new(cores);
        let irq_wcet = cache()
            .analyze(rt_kernel::kernel::EntryPoint::Interrupt, &cfg())
            .cycles;
        let margin = smp_latency_margin(irq_wcet, &smp);
        assert!(margin > 0);
        let widened = smp_irq_line_bounds(cache(), &cfg(), &lines, &smp);
        for (&(l, b), &(wl, wb)) in base.iter().zip(widened.iter()) {
            assert_eq!(l, wl);
            assert_eq!(wb, b + margin, "line {l} at {cores} cores");
        }
    }
}

/// The dynamic half: 2- and 4-core heavy-traffic runs with remote
/// thrashers stay inside the interference-aware bounds — zero oracle
/// violations — and the merged report stays byte-identical at any
/// worker count, remote cores included.
#[test]
fn thrasher_load_on_2_and_4_cores_stays_within_widened_bounds() {
    for cores in [2u8, 4] {
        let mut spec = LoadSpec::standard(2026, 2_500, 14, 2);
        spec.cores = cores;
        let serial = rt_load::run_load(&spec, &Pool::new(1), cache(), &cfg());
        assert!(
            serial.sound(),
            "{cores} cores: {} responses above the widened bound\n{}",
            serial.violations_total,
            serial.render()
        );
        assert!(serial.irq_responses > 0, "no interrupt traffic measured");
        // The remote thrashers actually booted: one per extra core per
        // shard, on top of the standard tenant mix.
        let base_threads = {
            let mut single = spec.clone();
            single.cores = 1;
            rt_load::run_load(&single, &Pool::new(4), cache(), &cfg()).threads
        };
        assert_eq!(
            serial.threads,
            base_threads + u64::from(spec.shards) * u64::from(cores - 1),
            "{cores} cores: remote thrashers missing from the census"
        );
        let parallel = rt_load::run_load(&spec, &Pool::new(4), cache(), &cfg());
        assert_eq!(
            serial.render(),
            parallel.render(),
            "{cores} cores: report depends on worker count"
        );
    }
}
