//! Property tests: preemption points preserve the kernel invariants and
//! operations make forward progress under arbitrary interrupt timing —
//! the executable analogue of the paper's proof obligation that "for each
//! preemption point that we add to seL4, we must correspondingly update
//! the proof in order to maintain these invariants" (§2.2).

use proptest::prelude::*;
use rt_hw::{HwConfig, IrqLine};
use rt_kernel::invariants;
use rt_kernel::kernel::KernelConfig;
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::untyped::RetypeKind;

/// Drives a (possibly repeatedly preempted) system call to completion,
/// checking every invariant after every kernel entry, re-raising an IRQ
/// at each step per the schedule.
fn drive_to_completion(
    k: &mut rt_kernel::kernel::Kernel,
    sys: Syscall,
    irq_at_steps: &[bool],
    max_entries: u32,
) -> u32 {
    let mut entries = 0;
    loop {
        entries += 1;
        assert!(
            entries <= max_entries,
            "no forward progress after {max_entries} entries"
        );
        if irq_at_steps
            .get(entries as usize % irq_at_steps.len().max(1))
            .copied()
            .unwrap_or(false)
        {
            let now = k.machine.now();
            k.machine.irq.raise(IrqLine(7), now);
        }
        let out = k.handle_syscall(sys.clone());
        invariants::assert_all(k);
        match out {
            SyscallOutcome::Completed(_) => return entries,
            SyscallOutcome::Preempted => continue,
        }
    }
}

/// Body of `retype_survives_arbitrary_preemption`, shared with the named
/// replay of the stored shrink in
/// `proptest-regressions/tests/preemption_safety.txt` (see
/// `tests/tests/regressions.rs` for the seed-coverage meta test).
fn retype_case(size_bits: u8, irqs: &[bool]) -> Result<(), TestCaseError> {
    let (mut k, _task, ut, dest) =
        rt_bench::workloads::retype_kernel(KernelConfig::after(), HwConfig::default(), 20);
    let sys = Syscall::Retype {
        untyped: ut,
        kind: RetypeKind::Frame {
            size_bits: if size_bits >= 16 { 16 } else { 12 },
        },
        count: 2,
        dest_cnode: dest,
        dest_offset: 8,
    };
    let objs_before = k.objs.len();
    drive_to_completion(&mut k, sys, irqs, 4096);
    // Both frames exist and their memory is zeroed.
    prop_assert_eq!(k.objs.len(), objs_before + 2);
    for (_, o) in k.objs.iter() {
        if matches!(o.kind, rt_kernel::obj::ObjKind::Frame(_)) {
            prop_assert!(k.machine.phys.is_zero_range(o.base, o.size()));
        }
    }
    Ok(())
}

/// Replays the stored proptest shrink `size_bits = 12, irqs = [false]`
/// (`cc 06ce83b2…` — a historical clear-progress accounting failure) as a
/// plain, deterministic tier-1 test.
#[test]
fn regression_retype_size12_no_irqs() {
    retype_case(12, &[false]).expect("stored regression seed must pass");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn badged_abort_survives_arbitrary_preemption(
        n in 1u32..48,
        every in 1u32..6,
        irqs in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let (mut k, _server, cptr) = rt_bench::workloads::badged_queue_kernel(
            KernelConfig::after(),
            HwConfig::default(),
            n,
            every,
        );
        let ep = {
            let root = k.objs.tcb(k.current()).cspace_root.clone();
            let slot = rt_kernel::cnode::resolve_slot(&k.objs, &root, 1, 32, |_| {}).expect("ep");
            match rt_kernel::cap::read_slot(&k.objs, slot).cap {
                rt_kernel::cap::CapType::Endpoint { obj, .. } => obj,
                _ => unreachable!(),
            }
        };
        let before = rt_kernel::ep::ep_len(&k.objs, ep);
        drive_to_completion(&mut k, Syscall::Revoke { cptr }, &irqs, 8 * n + 32);
        // Every badge-42 sender was aborted, every other sender remains.
        let expected_aborted = n.div_ceil(every);
        prop_assert_eq!(rt_kernel::ep::ep_len(&k.objs, ep), before - expected_aborted);
        // Aborted threads are runnable again (Restart) and queued.
        prop_assert!(k.objs.ep(ep).abort.is_none(), "abort state cleared");
    }

    #[test]
    fn retype_survives_arbitrary_preemption(
        size_bits in 12u8..17,
        irqs in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        retype_case(size_bits, &irqs)?;
    }

    #[test]
    fn endpoint_delete_survives_arbitrary_preemption(
        n in 1u32..40,
        irqs in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let (mut k, _server, _) = rt_bench::workloads::badged_queue_kernel(
            KernelConfig::after(),
            HwConfig::default(),
            n,
            1,
        );
        // Delete the badged child first (cptr 2), then the final cap
        // (cptr 1) which destroys the endpoint and drains the queue.
        drive_to_completion(&mut k, Syscall::Delete { cptr: 2 }, &irqs, 8 * n + 32);
        drive_to_completion(&mut k, Syscall::Delete { cptr: 1 }, &irqs, 8 * n + 32);
        // All former waiters are runnable again.
        let mut waiters = 0;
        for (_, o) in k.objs.iter() {
            if let rt_kernel::obj::ObjKind::Tcb(t) = &o.kind {
                prop_assert!(
                    !matches!(t.state, rt_kernel::tcb::ThreadState::BlockedOnSend { .. }),
                    "{:?} still blocked on a deleted endpoint",
                    t.name
                );
                waiters += 1;
            }
        }
        prop_assert!(waiters >= n as usize);
    }
}

#[test]
fn before_kernel_never_preempts() {
    let (mut k, _server, cptr) = rt_bench::workloads::badged_queue_kernel(
        KernelConfig::before(),
        HwConfig::default(),
        64,
        2,
    );
    let now = k.machine.now();
    k.machine.irq.raise(IrqLine(7), now);
    let out = k.handle_syscall(Syscall::Revoke { cptr });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert_eq!(k.stats.preemptions, 0);
    invariants::assert_all(&k);
}
