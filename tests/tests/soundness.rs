//! The headline soundness property: for every entry point, kernel
//! configuration, and cache configuration, the **computed bound dominates
//! the observed worst case** — the paper's Table 2 relation, checked
//! mechanically. (The computed number uses the pessimistic §5.1 model;
//! the observed number runs the same kernel blocks on the real 4-way
//! caches with the §5.4 dirty-pollution preamble.)
//!
//! Dominance is asserted **per attribution bucket**, not just in total:
//! the observed pipeline / ifetch-miss / dmiss / L2-writeback cycles must
//! each stay under the computed bound's matching bucket. The bucket
//! partition was chosen to make this a theorem of the per-access costs —
//! see `docs/TRACING.md` for the case analysis.

use std::sync::OnceLock;

use rt_bench::attribution::observe_attribution;
use rt_bench::observe::observe_entry_reps;
use rt_hw::{Bucket, HwConfig};
use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_wcet::{AnalysisCache, AnalysisConfig};

/// One cache for the whole test binary: the eight `check` tests run
/// concurrently under the libtest harness, and the cache lets them share
/// the layout, the after-kernel CFGs and the cost models instead of each
/// rebuilding its own.
fn cache() -> &'static AnalysisCache {
    static CACHE: OnceLock<AnalysisCache> = OnceLock::new();
    CACHE.get_or_init(AnalysisCache::new)
}

fn check(entry: EntryPoint, l2: bool) {
    let kernel = KernelConfig::after();
    let report = cache().analyze(
        entry,
        &AnalysisConfig {
            kernel,
            l2,
            pinning: false,
            l2_kernel_locked: false,
            manual_constraints: true,
        },
    );
    let computed = report.cycles;
    assert_eq!(
        report.breakdown.total(),
        computed,
        "{entry:?} l2={l2}: computed breakdown must sum to the bound"
    );
    let hw = HwConfig {
        l2_enabled: l2,
        ..HwConfig::default()
    };
    let observed = observe_entry_reps(entry, kernel, hw, 6);
    assert!(
        observed <= computed,
        "{entry:?} l2={l2}: observed {observed} exceeds computed {computed}"
    );
    // And the bound is not absurdly loose either (the paper's worst ratio
    // is 5.42; allow an order of magnitude before alarm).
    assert!(
        computed < observed.saturating_mul(20),
        "{entry:?} l2={l2}: computed {computed} is >20x observed {observed}"
    );
    // Per-bucket dominance: the observed worst run's cycles in every
    // bucket stay under the computed worst path's matching bucket.
    let att = observe_attribution(entry, kernel, hw, 6);
    assert_eq!(
        att.breakdown.total(),
        att.cycles,
        "{entry:?} l2={l2}: observed breakdown must sum to the total"
    );
    for b in Bucket::ALL {
        assert!(
            att.breakdown.get(b) <= report.breakdown.get(b),
            "{entry:?} l2={l2} bucket {}: observed {} exceeds computed {}",
            b.name(),
            att.breakdown.get(b),
            report.breakdown.get(b)
        );
    }
}

#[test]
fn syscall_l2_off_sound() {
    check(EntryPoint::Syscall, false);
}

#[test]
fn syscall_l2_on_sound() {
    check(EntryPoint::Syscall, true);
}

#[test]
fn undefined_l2_off_sound() {
    check(EntryPoint::Undefined, false);
}

#[test]
fn undefined_l2_on_sound() {
    check(EntryPoint::Undefined, true);
}

#[test]
fn page_fault_l2_off_sound() {
    check(EntryPoint::PageFault, false);
}

#[test]
fn page_fault_l2_on_sound() {
    check(EntryPoint::PageFault, true);
}

#[test]
fn interrupt_l2_off_sound() {
    check(EntryPoint::Interrupt, false);
}

#[test]
fn interrupt_l2_on_sound() {
    check(EntryPoint::Interrupt, true);
}

#[test]
fn pinned_bound_dominates_pinned_observation() {
    // Table 1's configuration: pinning on, L2 off.
    let kernel = KernelConfig::after();
    let computed = cache()
        .analyze(
            EntryPoint::Interrupt,
            &AnalysisConfig {
                kernel,
                l2: false,
                pinning: true,
                l2_kernel_locked: false,
                manual_constraints: true,
            },
        )
        .cycles;
    let hw = HwConfig {
        locked_l1_ways: 1,
        ..HwConfig::default()
    };
    let mut w = rt_bench::workloads::WorstInterrupt::new(kernel, hw);
    let report = rt_kernel::pinning::apply_pinning(&mut w.kernel);
    assert_eq!(report.rejected, 0);
    let observed = (0..6).map(|_| w.fire_polluted()).max().expect("runs");
    assert!(
        observed <= computed,
        "pinned: observed {observed} exceeds computed {computed}"
    );
}
