//! SMP kernel semantics (DESIGN.md §14), unit-tested on a 2-core
//! machine: affinity migration routes threads between per-core Benno
//! queues and kicks the destination; reschedule IPIs are serviced as
//! decode → work → auto-EOI with the phase markers in the hardware
//! trace; TLB shootdowns complete asynchronously with agreeing
//! counters; and the per-core run-queue/bitmap invariants hold through
//! it all — including the `smp-idle-core-kicked` detector that fires
//! when the kick is lost.

use rt_hw::{HwConfig, IrqLine, TraceEvent};
use rt_kernel::cap::{insert_cap, CapType, SlotRef};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig, SchedAction};
use rt_kernel::obj::ObjId;
use rt_kernel::smp::{IPI_RESCHED_LINE, IPI_SHOOTDOWN_LINE};
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::tcb::ThreadState;
use rt_kernel::untyped::RetypeKind;

const ROOT_CPTR: u32 = 5;
const UT_CPTR: u32 = 4;
const PD_CPTR: u32 = 10;
const PT_CPTR: u32 = 11;
const FRAME_CPTR: u32 = 12;

/// Boots a 2-core kernel: a prio-100 manager running on core 0 (holding
/// root-CNode and untyped caps) plus two resumed prio-20/30 workers
/// queued on core 0.
fn boot() -> (Kernel, ObjId, [ObjId; 2]) {
    let mut k = Kernel::new(KernelConfig::after(), HwConfig::default());
    k.enable_smp(2);
    let cnode = k.boot_cnode(8);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 24,
        guard: 0,
    };
    let ut = k.boot_untyped(17);
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, UT_CPTR),
        CapType::Untyped(ut),
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, ROOT_CPTR),
        root.clone(),
        None,
    );
    let manager = k.boot_tcb("manager", 100);
    let w0 = k.boot_tcb("w0", 20);
    let w1 = k.boot_tcb("w1", 30);
    for t in [manager, w0, w1] {
        k.objs.tcb_mut(t).cspace_root = root.clone();
    }
    // Manager first: it out-prioritises both workers, so the resumes
    // below leave them queued rather than scheduling them.
    k.objs.tcb_mut(manager).state = ThreadState::Running;
    k.force_current_for_test(manager);
    k.boot_resume(w0);
    k.boot_resume(w1);
    (k, manager, [w0, w1])
}

fn ok(k: &mut Kernel, sys: Syscall) {
    assert_eq!(k.handle_syscall(sys), SyscallOutcome::Completed(Ok(())));
}

/// Collects the phase labels out of the machine trace, in order.
fn phases(k: &Kernel) -> Vec<&'static str> {
    k.machine
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Phase { label, .. } => Some(*label),
            _ => None,
        })
        .collect()
}

#[test]
fn set_affinity_migrates_queued_thread_and_kicks_target() {
    let (mut k, _m, [w0, _w1]) = boot();
    assert!(k.objs.tcb(w0).in_runqueue);
    assert!(k.queues.bitmap.is_set(20), "w0 queued on core 0");
    k.set_affinity(w0, 1);
    assert_eq!(k.objs.tcb(w0).affinity, 1);
    assert!(!k.queues.bitmap.is_set(20), "core 0 bitmap bit cleared");
    assert!(k.core_queues(1).bitmap.is_set(20), "core 1 bitmap bit set");
    assert_eq!(k.core_queues(1).head(20), Some(w0));
    let smp = k.smp_state().unwrap();
    assert_eq!(smp.resched_sent[1], 1, "destination was kicked");
    assert!(
        k.core_irq(1).is_pending(IrqLine(IPI_RESCHED_LINE)),
        "reschedule IPI pending on core 1"
    );
    assert!(
        invariants::check_all(&k).is_empty(),
        "{:?}",
        invariants::check_all(&k)
    );
    // Migrating back dequeues from the remote slot and re-kicks nobody
    // (core 0 is the caller's own core).
    k.set_affinity(w0, 0);
    assert!(k.queues.bitmap.is_set(20));
    assert!(!k.core_queues(1).bitmap.is_set(20));
    assert_eq!(k.smp_state().unwrap().resched_sent[0], 0, "no self-IPI");
    assert!(invariants::check_all(&k).is_empty());
}

#[test]
fn set_affinity_on_running_or_blocked_thread_only_sets_field() {
    let (mut k, manager, [w0, _w1]) = boot();
    // Running current thread: field changes, nothing queued, no kick.
    k.set_affinity(manager, 1);
    assert_eq!(k.objs.tcb(manager).affinity, 1);
    assert!(!k.objs.tcb(manager).in_runqueue);
    assert_eq!(k.smp_state().unwrap().resched_sent[1], 0);
    k.set_affinity(manager, 0);
    // Non-queued (suspended/blocked) thread: same — the routed enqueue
    // happens at wake time.
    k.objs.tcb_mut(w0).state = ThreadState::Inactive;
    k.queues.dequeue(&mut k.objs, w0);
    k.set_affinity(w0, 1);
    assert_eq!(k.objs.tcb(w0).affinity, 1);
    assert!(!k.core_queues(1).bitmap.is_set(20));
    assert_eq!(k.smp_state().unwrap().resched_sent[1], 0);
    assert!(invariants::check_all(&k).is_empty());
}

#[test]
fn resched_ipi_services_as_decode_then_eoi_and_forces_choose_new() {
    let (mut k, _m, [w0, _w1]) = boot();
    k.set_affinity(w0, 1);
    // Service the kick from core 1's side.
    k.switch_core(1);
    assert_eq!(k.core_sched_action(1), SchedAction::ResumeCurrent);
    assert!(k.machine.irq.has_pending());
    k.machine.trace.enable();
    k.handle_interrupt();
    let ph = phases(&k);
    let decode = ph
        .iter()
        .position(|l| *l == "ipi-decode")
        .expect("decode phase");
    let eoi = ph.iter().position(|l| *l == "ipi-eoi").expect("eoi phase");
    assert!(decode < eoi, "decode must precede EOI: {ph:?}");
    let smp = k.smp_state().unwrap();
    assert_eq!(smp.ipi_eois, 1, "auto-EOI counted");
    assert!(
        !k.machine.irq.is_pending(IrqLine(IPI_RESCHED_LINE)),
        "IPI acked"
    );
    assert!(
        !k.machine.irq.is_masked(IrqLine(IPI_RESCHED_LINE)),
        "IPI lines are never masked (the ack is the EOI)"
    );
    // The kick forced a full chooseThread: the migrated worker runs.
    assert_eq!(k.core_current(1), w0);
    assert!(invariants::check_all(&k).is_empty());
}

#[test]
fn lost_resched_ipi_is_caught_by_idle_core_invariant() {
    let (mut k, _m, [w0, _w1]) = boot();
    k.set_drop_resched_ipis(true);
    k.set_affinity(w0, 1);
    let smp = k.smp_state().unwrap();
    assert_eq!(smp.resched_sent[1], 1, "send was attempted");
    assert!(
        !k.core_irq(1).is_pending(IrqLine(IPI_RESCHED_LINE)),
        "but the IPI was dropped"
    );
    let v = invariants::check_all(&k);
    assert!(
        v.iter().any(|v| v.invariant == "smp-idle-core-kicked"),
        "lost kick undetected: {v:?}"
    );
}

#[test]
fn tlb_shootdown_broadcasts_and_completes_asynchronously() {
    let (mut k, _m, _ws) = boot();
    // Build a mapping, then unmap it: the local TLB flush must
    // broadcast a shootdown IPI to core 1.
    const VADDR: u32 = 0x1000_0000;
    for sys in [
        Syscall::Retype {
            untyped: UT_CPTR,
            kind: RetypeKind::PageDirectory,
            count: 1,
            dest_cnode: ROOT_CPTR,
            dest_offset: PD_CPTR,
        },
        Syscall::Retype {
            untyped: UT_CPTR,
            kind: RetypeKind::PageTable,
            count: 1,
            dest_cnode: ROOT_CPTR,
            dest_offset: PT_CPTR,
        },
        Syscall::Retype {
            untyped: UT_CPTR,
            kind: RetypeKind::Frame { size_bits: 12 },
            count: 1,
            dest_cnode: ROOT_CPTR,
            dest_offset: FRAME_CPTR,
        },
        Syscall::MapPageTable {
            pt: PT_CPTR,
            pd: PD_CPTR,
            vaddr: VADDR,
        },
        Syscall::MapFrame {
            frame: FRAME_CPTR,
            pd: PD_CPTR,
            vaddr: VADDR,
        },
    ] {
        ok(&mut k, sys);
    }
    k.machine.trace.enable();
    ok(&mut k, Syscall::UnmapFrame { frame: FRAME_CPTR });
    assert!(phases(&k).contains(&"shootdown-send"), "{:?}", phases(&k));
    let smp = k.smp_state().unwrap();
    assert_eq!(smp.shootdown.initiated, 1);
    assert_eq!(smp.shootdown.completed, 0);
    assert!(smp.shootdown.pending[1]);
    assert!(k.core_irq(1).is_pending(IrqLine(IPI_SHOOTDOWN_LINE)));
    assert!(
        invariants::check_all(&k).is_empty(),
        "{:?}",
        invariants::check_all(&k)
    );
    // The target invalidates when it services the IPI; no initiator spin.
    k.switch_core(1);
    k.handle_interrupt();
    let smp = k.smp_state().unwrap();
    assert_eq!(smp.shootdown.completed, 1, "remote invalidate counted");
    assert!(!smp.shootdown.pending[1]);
    assert_eq!(smp.ipi_eois, 1);
    assert!(invariants::check_all(&k).is_empty());
}

#[test]
fn per_core_bitmaps_stay_consistent_through_migration_churn() {
    let (mut k, _m, [w0, w1]) = boot();
    for round in 0..4u8 {
        let (a, b) = (round % 2, (round + 1) % 2);
        k.set_affinity(w0, a);
        k.set_affinity(w1, b);
        for c in 0..2u8 {
            // Queue contents and the bitmap must agree on every core,
            // every round (the §3.2 invariant, per core).
            let v = invariants::check_all(&k);
            assert!(v.is_empty(), "round {round} core {c}: {v:?}");
        }
        // Drain the kicks so the next round starts quiescent.
        for c in 0..2u8 {
            if k.core_irq(c).has_pending() {
                k.switch_core(c);
                while k.machine.irq.has_pending() {
                    k.handle_interrupt();
                }
            }
        }
        k.switch_core(0);
    }
    // After the final drain each worker lives on its affinity core —
    // either scheduled there or still queued there with the bitmap bit.
    for (w, prio) in [(w0, 20u8), (w1, 30)] {
        let aff = k.objs.tcb(w).affinity;
        assert!(
            k.core_current(aff) == w || k.core_queues(aff).bitmap.is_set(prio),
            "worker not on its affinity core {aff}"
        );
    }
}
