//! The load engine's two headline guarantees, end to end:
//!
//! * **Distribution determinism** — a run's merged histograms, census
//!   and rendered report are byte-identical whether the shards execute
//!   serially or on an 8-worker pool, for arbitrary specs (DESIGN.md
//!   §11).
//! * **Soundness oracle** — a seeded bound-violating delay
//!   ([`rt_load::FaultInjection`]) is always caught, attributed to the
//!   right line, and the worst sample replays bit-identically with a
//!   full cycle attribution (the trace-backed evidence trail).
//!
//! Bounds here are fixed stand-ins shaped like the real rank-aware
//! bounds: the properties under test are about the *engine*, and paying
//! a WCET analysis per proptest case would bury the signal in noise.
//! `load_smoke` in `ci.sh` covers the engine against the real
//! `irq_line_bounds` output.

use proptest::prelude::*;
use rt_load::{run_shard, FaultInjection, LoadResult, LoadSpec};
use rt_pool::Pool;

fn standin_bounds(spec: &LoadSpec) -> Vec<(u8, u64)> {
    spec.active_lines()
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, 180_000 + 15_000 * (i as u64 + 1)))
        .collect()
}

/// Runs every shard of `spec` on `pool` and merges in shard order —
/// the same shape as `rt_load::run_load`, minus the WCET analysis.
fn run_merged(spec: &LoadSpec, pool: &Pool) -> LoadResult {
    let bounds = standin_bounds(spec);
    let shards: Vec<u32> = (0..spec.shards).collect();
    let reports = pool.parallel_map(shards, |s| run_shard(spec, s, &bounds));
    LoadResult::merge(spec, &bounds, 163_000, &reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed ⇒ identical merged histograms and identical rendered
    /// bytes, serial vs 8 workers.
    #[test]
    fn serial_and_parallel_runs_are_byte_identical(
        seed in 0u64..1_000_000,
        events in 400u64..1_200,
        tenants in 8u32..24,
        shards in 2u32..5,
    ) {
        let spec = LoadSpec::standard(seed, events, tenants, shards);
        let serial = run_merged(&spec, &Pool::new(1));
        let parallel = run_merged(&spec, &Pool::new(8));
        prop_assert_eq!(&serial.lines, &parallel.lines);
        prop_assert_eq!(&serial.syscalls, &parallel.syscalls);
        prop_assert_eq!(serial.worst, parallel.worst);
        prop_assert_eq!(serial.events, parallel.events);
        prop_assert_eq!(serial.render(), parallel.render());
    }
}

#[test]
fn clean_run_is_sound_and_injected_bug_is_caught() {
    let mut spec = LoadSpec::standard(404, 3_000, 16, 3);
    let bounds = standin_bounds(&spec);
    let bound_max = bounds.iter().map(|&(_, b)| b).max().unwrap();

    // Without the injection the oracle passes.
    let clean = run_merged(&spec, &Pool::new(4));
    assert!(clean.sound(), "clean run violated: {}", clean.render());
    assert!(clean.irq_responses > 0, "no interrupt traffic measured");

    // With a delay bigger than every bound, the oracle fails on exactly
    // the injected shard and line.
    spec.fault = Some(FaultInjection {
        shard: 2,
        line: 0,
        after: 1,
        delay: bound_max + 75_000,
    });
    let buggy = run_merged(&spec, &Pool::new(4));
    assert!(!buggy.sound(), "oracle missed the injected delay");
    let v = buggy.violations[0];
    assert_eq!(v.sample.shard, 2);
    assert_eq!(v.sample.line, 0);
    assert!(v.sample.latency > v.bound);

    // The worst sample replays deterministically, with an attribution
    // that accounts for every cycle of the observed latency.
    let worst = buggy.worst.expect("worst sample exists");
    assert!(worst.latency > bound_max);
    let replay = rt_load::attribute_worst(&spec, &worst, &bounds);
    let attr = replay.attribution.expect("replay finds the sample");
    assert!(attr.replay_matches, "replay diverged from the recording");
    assert_eq!(
        attr.pipeline + attr.ifetch_miss + attr.dmiss + attr.l2,
        worst.latency,
        "attribution buckets must partition the latency"
    );
}

#[test]
fn fault_free_shards_are_unaffected_by_injection_elsewhere() {
    let mut spec = LoadSpec::standard(77, 2_000, 12, 3);
    let bounds = standin_bounds(&spec);
    let clean0 = run_shard(&spec, 0, &bounds);
    spec.fault = Some(FaultInjection {
        shard: 1,
        line: 0,
        after: 0,
        delay: 500_000,
    });
    let with_fault0 = run_shard(&spec, 0, &bounds);
    // Shard 0's entire report is bitwise unchanged: injection is scoped
    // to its shard, so the blast radius of a seeded bug is one shard.
    assert_eq!(clean0.lines, with_fault0.lines);
    assert_eq!(clean0.syscalls, with_fault0.syscalls);
    assert_eq!(clean0.worst, with_fault0.worst);
    assert!(with_fault0.violations.is_empty());
}
