//! SMP N=1 differential (DESIGN.md §14): a kernel with the SMP layer
//! enabled at **one** core must be byte-identical to the plain kernel on
//! every observable — not "equivalent", identical. All SMP charges
//! (remote-enqueue device writes, IPI latency, lock wait) are gated on
//! `n_cores > 1`, the big lock is uncontended by construction, and the
//! per-core data for core 0 lives in the same fields the single-core
//! kernel uses; so enabling SMP at N=1 must not move a single cycle.
//!
//! This is the downgrade-safety contract that lets every existing golden,
//! BENCH block and explorer report stand unchanged while the SMP code is
//! compiled in: randomized syscall/IRQ systems run under both kernels and
//! the block trace, PMU counters, cycle accounts, kernel stats, IRQ
//! response log and final clock are compared as rendered bytes.

use proptest::prelude::*;
use rt_hw::{HwConfig, IrqLine};
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::Syscall;
use rt_kernel::system::{Action, StopReason, System, ThreadScript};

/// One user action in the differential trace language — a trimmed cut of
/// the `system_fuzz` generator covering IPC, notifications, scheduling,
/// faults and cache pollution (the paths whose timing SMP gating could
/// plausibly disturb).
#[derive(Debug, Clone)]
enum DiffAction {
    Compute(u16),
    Send { block: bool },
    Call,
    Recv,
    ReplyRecv,
    Signal,
    Wait,
    Yield,
    PageFault,
    Undef,
    Pollute,
}

const EP_CPTR: u32 = 1;
const BADGED_CPTR: u32 = 2;
const NTFN_CPTR: u32 = 3;

fn to_action(f: &DiffAction, tid: u32) -> Action {
    match f {
        DiffAction::Compute(c) => Action::Compute(*c as u64 + 1),
        DiffAction::Send { block } => Action::Syscall(Syscall::Send {
            cptr: EP_CPTR,
            len: 2,
            caps: vec![],
            block: *block,
        }),
        DiffAction::Call => Action::Syscall(Syscall::Call {
            cptr: BADGED_CPTR,
            len: 4,
            caps: vec![],
        }),
        DiffAction::Recv => Action::Syscall(Syscall::Recv { cptr: EP_CPTR }),
        DiffAction::ReplyRecv => Action::Syscall(Syscall::ReplyRecv {
            cptr: EP_CPTR,
            len: 2,
            caps: vec![],
        }),
        DiffAction::Signal => Action::Syscall(Syscall::Signal { cptr: NTFN_CPTR }),
        DiffAction::Wait => Action::Syscall(Syscall::Wait { cptr: NTFN_CPTR }),
        DiffAction::Yield => Action::Syscall(Syscall::Yield),
        DiffAction::PageFault => Action::PageFault(0x0060_0000 + tid * 0x1000),
        DiffAction::Undef => Action::UndefInstr,
        DiffAction::Pollute => Action::Pollute,
    }
}

fn diff_action() -> impl Strategy<Value = DiffAction> {
    prop_oneof![
        (1u16..5000).prop_map(DiffAction::Compute),
        any::<bool>().prop_map(|block| DiffAction::Send { block }),
        Just(DiffAction::Call),
        Just(DiffAction::Recv),
        Just(DiffAction::ReplyRecv),
        Just(DiffAction::Signal),
        Just(DiffAction::Wait),
        Just(DiffAction::Yield),
        Just(DiffAction::PageFault),
        Just(DiffAction::Undef),
        Just(DiffAction::Pollute),
    ]
}

fn boot(cfg: KernelConfig, smp: bool, n_threads: u32) -> (Kernel, Vec<rt_kernel::obj::ObjId>) {
    let mut k = Kernel::new(cfg, HwConfig::default());
    if smp {
        k.enable_smp(1);
    }
    let cnode = k.boot_cnode(10);
    let root = CapType::CNode {
        obj: cnode,
        guard_bits: 22,
        guard: 0,
    };
    let ep = k.boot_endpoint();
    let ntfn = k.boot_ntfn();
    let orig = SlotRef::new(cnode, EP_CPTR);
    insert_cap(
        &mut k.objs,
        orig,
        CapType::Endpoint {
            obj: ep,
            badge: Badge::NONE,
            rights: Rights::ALL,
        },
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, BADGED_CPTR),
        CapType::Endpoint {
            obj: ep,
            badge: Badge(9),
            rights: Rights::ALL,
        },
        Some(orig),
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, NTFN_CPTR),
        CapType::Notification {
            obj: ntfn,
            badge: Badge(1),
            rights: Rights::ALL,
        },
        None,
    );
    let fault_ep = k.boot_endpoint();
    insert_cap(
        &mut k.objs,
        SlotRef::new(cnode, 6),
        CapType::Endpoint {
            obj: fault_ep,
            badge: Badge::NONE,
            rights: Rights::ALL,
        },
        None,
    );
    let mut threads = Vec::new();
    for i in 0..n_threads {
        let t = k.boot_tcb(&format!("diff{i}"), 10 + (i % 3) as u8);
        k.objs.tcb_mut(t).cspace_root = root.clone();
        k.objs.tcb_mut(t).fault_handler = 6;
        k.boot_resume(t);
        threads.push(t);
    }
    (k, threads)
}

/// Runs one randomized system on a kernel and returns every observable,
/// rendered: final clock, block trace, PMU, cycle accounts, stats and
/// IRQ log.
fn run_observed(
    smp: bool,
    before: bool,
    scripts: &[Vec<DiffAction>],
    irqs: &[(u64, u8)],
    timer: Option<u64>,
) -> (StopReason, String) {
    let cfg = if before {
        KernelConfig::before()
    } else {
        KernelConfig::after()
    };
    let (mut k, threads) = boot(cfg, smp, scripts.len() as u32);
    for (at, line) in irqs {
        k.irq_table.issue(*line);
        k.machine.irq.schedule(*at, IrqLine(*line));
    }
    k.start_trace();
    let mut sys = System::new(k);
    for (i, script) in scripts.iter().enumerate() {
        let actions: Vec<Action> = script
            .iter()
            .map(|f| to_action(f, i as u32))
            .chain(std::iter::once(Action::Stop))
            .collect();
        sys.set_script(threads[i], ThreadScript::once(actions));
    }
    if let Some(p) = timer {
        sys.enable_timer(p, 1_500_000);
    }
    let reason = sys.run(1_500_000);
    rt_kernel::invariants::assert_all(&sys.kernel);
    let k = &mut sys.kernel;
    let obs = format!(
        "now={}\ntrace={:?}\npmu={:?}\naccounts={:?}\nstats={:?}\nirq_log={:?}\n",
        k.machine.now(),
        k.take_trace(),
        k.machine.pmu,
        k.machine.accounts,
        k.stats,
        k.irq_log,
    );
    (reason, obs)
}

/// Body shared between the proptest and the named deterministic
/// regression below.
fn diff_case(
    scripts: &[Vec<DiffAction>],
    irqs: &[(u64, u8)],
    timer: Option<u64>,
    before: bool,
) -> Result<(), TestCaseError> {
    let (plain_stop, plain) = run_observed(false, before, scripts, irqs, timer);
    let (smp_stop, smp) = run_observed(true, before, scripts, irqs, timer);
    prop_assert_eq!(plain_stop, smp_stop, "stop reasons diverged");
    prop_assert_eq!(&plain, &smp, "N=1 SMP kernel diverged from plain kernel");
    Ok(())
}

/// A fixed, deterministic trace exercising IPC, IRQ wakeups and the
/// timer under both kernel configs — the always-on pin behind the
/// randomized search.
#[test]
fn fixed_trace_identical_under_n1_smp() {
    let scripts = vec![
        vec![
            DiffAction::Call,
            DiffAction::Compute(700),
            DiffAction::Wait,
            DiffAction::Pollute,
            DiffAction::Yield,
        ],
        vec![
            DiffAction::Recv,
            DiffAction::ReplyRecv,
            DiffAction::Signal,
            DiffAction::PageFault,
            DiffAction::Compute(120),
        ],
        vec![DiffAction::Send { block: true }, DiffAction::Undef],
    ];
    let irqs = [(9_000u64, 2u8), (40_000, 5), (41_000, 2)];
    for before in [false, true] {
        diff_case(&scripts, &irqs, Some(25_000), before).expect("fixed trace diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized systems: the N=1 SMP kernel is byte-identical to the
    /// plain kernel on trace, PMU, accounts, stats, IRQ log and clock.
    #[test]
    fn n1_smp_kernel_is_byte_identical(
        scripts in proptest::collection::vec(
            proptest::collection::vec(diff_action(), 1..20),
            2..5,
        ),
        irqs in proptest::collection::vec((1u64..1_000_000, 1u8..8), 0..8),
        timer in proptest::option::of(10_000u64..200_000),
        before in any::<bool>(),
    ) {
        diff_case(&scripts, &irqs, timer, before)?;
    }
}
