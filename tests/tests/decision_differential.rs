//! Differential test for the schedule-decision hook: a kernel with the
//! [`RunToCompletion`] source installed must be **bit-identical** to an
//! uninstrumented kernel — same block trace, same final time, same PMU
//! counters, same statistics. This is the contract that lets rt-explore
//! instrument the production kernel without invalidating any table or
//! figure: the hook charges no cycles and mutates nothing unless a source
//! actually injects.

use rt_hw::{HwConfig, IrqLine};
use rt_kernel::decision::RunToCompletion;
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::kprog::Block;
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::untyped::RetypeKind;

/// Everything observable about one driven run.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    trace: Vec<Block>,
    now: u64,
    cycles: u64,
    instructions: u64,
    stats: String,
    preemptions: u64,
}

/// Drives `sys` to completion, raising a device interrupt before every
/// kernel entry so the preemption points actually fire (and therefore
/// actually consult the installed source).
fn drive(k: &mut Kernel, sys: Syscall) {
    let mut entries = 0;
    loop {
        entries += 1;
        assert!(entries <= 4096, "no forward progress");
        let now = k.machine.now();
        k.machine.irq.raise(IrqLine(7), now);
        if let SyscallOutcome::Completed(_) = k.handle_syscall(sys.clone()) {
            return;
        }
    }
}

fn observe(install: bool, build: impl Fn() -> (Kernel, Syscall)) -> Observation {
    let (mut k, sys) = build();
    if install {
        k.set_decision_source(Box::new(RunToCompletion));
    }
    k.start_trace();
    let snap = k.machine.pmu.snapshot();
    drive(&mut k, sys);
    Observation {
        trace: k.take_trace(),
        now: k.machine.now(),
        cycles: k.machine.pmu.cycles_since(snap),
        instructions: k.machine.pmu.instructions_since(snap),
        stats: format!("{:?}", k.stats),
        preemptions: k.stats.preemptions,
    }
}

fn assert_identical(build: impl Fn() -> (Kernel, Syscall)) {
    let plain = observe(false, &build);
    let hooked = observe(true, &build);
    assert!(
        plain.preemptions > 0,
        "scenario never preempted — the hook was never on the hot path"
    );
    assert_eq!(plain, hooked, "decision hook perturbed the kernel");
}

/// Badged-abort revoke (§3.4) under repeated preemption.
#[test]
fn revoke_is_unperturbed_by_the_hook() {
    assert_identical(|| {
        let (k, _server, cptr) = rt_bench::workloads::badged_queue_kernel(
            KernelConfig::after(),
            HwConfig::default(),
            24,
            2,
        );
        (k, Syscall::Revoke { cptr })
    });
}

/// Preemptible retype/clear (§3.5) under repeated preemption.
#[test]
fn retype_is_unperturbed_by_the_hook() {
    assert_identical(|| {
        let (k, _task, ut, dest) =
            rt_bench::workloads::retype_kernel(KernelConfig::after(), HwConfig::default(), 20);
        let sys = Syscall::Retype {
            untyped: ut,
            kind: RetypeKind::Frame { size_bits: 16 },
            count: 2,
            dest_cnode: dest,
            dest_offset: 8,
        };
        (k, sys)
    });
}

/// The before-kernel has no preemption points; the hook must be equally
/// invisible when the poll sites themselves are compiled out.
#[test]
fn before_kernel_is_unperturbed_by_the_hook() {
    let build = || {
        let (k, _server, cptr) = rt_bench::workloads::badged_queue_kernel(
            KernelConfig::before(),
            HwConfig::default(),
            24,
            2,
        );
        (k, Syscall::Revoke { cptr })
    };
    let plain = observe(false, build);
    let hooked = observe(true, build);
    assert_eq!(plain.preemptions, 0);
    assert_eq!(plain, hooked);
}
