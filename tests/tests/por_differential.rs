//! Reduced-vs-unreduced exploration differentials: partial-order
//! reduction must be *invisible* to everything the explorer is trusted
//! for.
//!
//! Sleep-set reduction skips transitions, never states — so for any
//! scenario (here: randomized small-scope instances) the reduced search
//! must expand exactly the same canonical-state set as the unreduced PR 5
//! style search, while executing no more runs. Full reduction (sleep sets
//! plus persistent singletons at invisible steps) may drop states whose
//! only difference is an oracle-invisible script cursor, so it is held to
//! the weaker — and operationally sufficient — contract: every oracle
//! verdict agrees, including the seeded §3.4 bugs being caught at every
//! worker count with byte-identical reports.

use proptest::prelude::*;
use rt_explore::scenario::by_name;
use rt_explore::{
    explore, explore_with_states, randomized, ExploreConfig, PorMode, RandomParams, SeededBug,
};
use rt_pool::Pool;

fn cfg(depth: usize, por: PorMode) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        por,
        ..ExploreConfig::default()
    }
}

fn arb_params() -> impl Strategy<Value = RandomParams> {
    (
        1u32..=3,
        0u32..=2,
        any::<bool>(),
        0u32..=2,
        0u32..=2,
        any::<bool>(),
    )
        .prop_map(
            |(senders, badge_every, with_driver, driver_budget, free_budget, revoke)| {
                RandomParams {
                    senders,
                    badge_every,
                    with_driver,
                    driver_budget,
                    free_budget,
                    revoke,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sleep-set reduction preserves the reachable canonical-state set
    /// exactly on randomized small scenarios, agrees on whether any
    /// oracle fires, and never executes *more* runs than the unreduced
    /// search.
    #[test]
    fn sleep_sets_preserve_visited_states_on_random_scenarios(p in arb_params()) {
        let sc = randomized(p);
        let pool = Pool::new(2);
        let (off, off_states) = explore_with_states(&sc, &cfg(6, PorMode::Off), &pool);
        let (sleep, sleep_states) = explore_with_states(&sc, &cfg(6, PorMode::Sleep), &pool);
        prop_assert!(!off.capped && !sleep.capped, "{}: capped", sc.name);
        prop_assert_eq!(
            &off_states,
            &sleep_states,
            "{}: reachable-state sets diverged (off {} vs sleep {})",
            &sc.name,
            off_states.len(),
            sleep_states.len()
        );
        prop_assert_eq!(
            off.counterexample.is_some(),
            sleep.counterexample.is_some(),
            "{}: oracle verdicts diverged",
            &sc.name
        );
        prop_assert!(
            sleep.interleavings <= off.interleavings,
            "{}: reduction executed more runs ({} > {})",
            &sc.name,
            sleep.interleavings,
            off.interleavings
        );
    }

    /// Full reduction (persistent singletons included) agrees with the
    /// unreduced search on whether any oracle fires — both on clean
    /// randomized kernels and with a seeded §3.4 bug armed.
    #[test]
    fn full_reduction_agrees_on_oracle_verdicts(p in arb_params()) {
        let sc = randomized(p);
        let pool = Pool::new(2);
        for bug in [None, Some(SeededBug::AbortSkip)] {
            let mut off_cfg = cfg(6, PorMode::Off);
            off_cfg.seeded_bug = bug;
            let mut full_cfg = cfg(6, PorMode::Full);
            full_cfg.seeded_bug = bug;
            let off = explore(&sc, &off_cfg, &pool);
            let full = explore(&sc, &full_cfg, &pool);
            prop_assert_eq!(
                off.counterexample.is_some(),
                full.counterexample.is_some(),
                "{} (bug {:?}): verdicts diverged",
                &sc.name,
                bug
            );
        }
    }
}

/// Both seeded PR 5 bugs stay caught with full POR on, at every worker
/// count, with byte-identical reports — the determinism and soundness
/// regression the parallel reduced search must never lose.
#[test]
fn seeded_bugs_caught_with_por_at_every_worker_count() {
    for (name, bug, family) in [
        ("badged-revoke", SeededBug::AbortSkip, "abort-"),
        ("ep-delete", SeededBug::DropRunnable, ""),
    ] {
        let sc = by_name(name).expect("scenario");
        let mut c = cfg(8, PorMode::Full);
        c.seeded_bug = Some(bug);
        let baseline = format!("{:?}", explore(&sc, &c, &Pool::new(1)));
        for workers in [2, 4] {
            let rep = explore(&sc, &c, &Pool::new(workers));
            assert_eq!(
                baseline,
                format!("{rep:?}"),
                "{name}: report diverged at {workers} workers"
            );
        }
        let rep = explore(&sc, &c, &Pool::new(4));
        let cex = rep
            .counterexample
            .unwrap_or_else(|| panic!("{name}: seeded bug not found with POR on"));
        assert!(
            cex.violations
                .iter()
                .any(|v| v.invariant.starts_with(family)),
            "{name}: unexpected violations {:?}",
            cex.violations
        );
    }
}

/// The reduction actually reduces: on the standard ep-delete scope the
/// sleep-set search discharges a healthy share of branches without
/// executing them, and full mode discharges at least as many.
#[test]
fn reduction_discharges_branches_on_ep_delete() {
    let sc = by_name("ep-delete").expect("scenario");
    let pool = Pool::new(2);
    let off = explore(&sc, &cfg(8, PorMode::Off), &pool);
    let sleep = explore(&sc, &cfg(8, PorMode::Sleep), &pool);
    let full = explore(&sc, &cfg(8, PorMode::Full), &pool);
    assert!(off.counterexample.is_none());
    assert!(sleep.sleep_skips > 0, "sleep sets never fired");
    assert!(
        sleep.interleavings < off.interleavings,
        "no run reduction ({} vs {})",
        sleep.interleavings,
        off.interleavings
    );
    assert!(
        full.interleavings <= sleep.interleavings,
        "persistent singletons made things worse"
    );
    assert_eq!(off.distinct_states, sleep.distinct_states);
}
