//! Golden-file tests: the rendered `repro` tables must match the
//! checked-in goldens **byte for byte**, at any worker count.
//!
//! The goldens in `tests/goldens/` were captured from the serial,
//! pre-cache implementation, so these tests pin three properties at once:
//! the analysis results themselves, the renderers' formatting, and the
//! determinism of the parallel/cached pipeline (a scheduling-dependent
//! solve order would show up here as a diff). They run at `reps = 2`
//! even though `repro` defaults to 8 — the observed maxima are
//! rep-invariant (the workloads are deterministic and the first polluted
//! rep already realises the maximum; `observe.rs` proves this
//! separately), which is also what makes golden-pinning the observation
//! columns legitimate.
//!
//! `ci.sh` additionally diffs the actual `repro table1|table2` stdout
//! against the same files, covering the binary's argument plumbing.

use rt_bench::sweep::SweepCtx;
use rt_bench::{attribution, tables};

fn check(name: &str, golden: &str, render: impl Fn(&SweepCtx) -> String) {
    for jobs in [1usize, 4] {
        let ctx = SweepCtx::with_jobs(jobs);
        let got = render(&ctx);
        assert!(
            got == golden,
            "{name} with {jobs} worker(s) diverged from tests/goldens/{name}.txt:\n\
             --- golden ---\n{golden}\n--- got ---\n{got}"
        );
    }
}

#[test]
fn table1_matches_golden() {
    check("table1", include_str!("../goldens/table1.txt"), |ctx| {
        tables::render_table1(&tables::table1_with(ctx))
    });
}

#[test]
fn table2_matches_golden() {
    check("table2", include_str!("../goldens/table2.txt"), |ctx| {
        tables::render_table2(&tables::table2_with(ctx, 2))
    });
}

#[test]
fn fig8_matches_golden() {
    check("fig8", include_str!("../goldens/fig8.txt"), |ctx| {
        tables::render_fig8(&tables::fig8_with(ctx, 2))
    });
}

#[test]
fn fig9_matches_golden() {
    check("fig9", include_str!("../goldens/fig9.txt"), |ctx| {
        tables::render_fig9(&tables::fig9_with(ctx, 2))
    });
}

#[test]
fn l2lock_matches_golden() {
    check("l2lock", include_str!("../goldens/l2lock.txt"), |ctx| {
        tables::render_l2lock(&tables::l2lock_with(ctx, 2))
    });
}

#[test]
fn attribution_matches_golden() {
    check(
        "attribution",
        include_str!("../goldens/attribution.txt"),
        |ctx| attribution::attribution_report_with(ctx, 2),
    );
}
