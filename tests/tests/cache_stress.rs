//! Concurrency stress tests for the sharded memoization layer and the
//! shared ILP basis seed — the structures PR 6's lock-free sweep path
//! leans on. Each test hammers one sharing mechanism from many threads
//! and asserts the build-exactly-once contract: every requester of a key
//! observes the *same* `Arc` (pointer equality, not just value equality)
//! and the build counters show one construction per distinct key, no
//! matter how the threads interleave.

use std::sync::Arc;

use rt_kernel::kernel::{EntryPoint, KernelConfig};
use rt_wcet::kmodel::BoundParams;
use rt_wcet::{AnalysisCache, AnalysisConfig, WcetReport};

fn acfg(l2: bool, pinning: bool, manual: bool) -> AnalysisConfig {
    AnalysisConfig {
        kernel: KernelConfig::after(),
        l2,
        pinning,
        l2_kernel_locked: false,
        manual_constraints: manual,
    }
}

/// N threads all requesting the *same* key must block on one builder and
/// come back with one shared report.
#[test]
fn same_key_from_many_threads_builds_once_and_shares_the_arc() {
    const THREADS: usize = 8;
    let cache = AnalysisCache::new();
    let reports: Vec<Arc<WcetReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| s.spawn(|| cache.analyze(EntryPoint::Interrupt, &acfg(false, false, true))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &reports[1..] {
        assert!(
            Arc::ptr_eq(&reports[0], r),
            "all threads must see the same Arc"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.reports.builds, 1, "{stats:?}");
    assert_eq!(stats.reports.lookups, THREADS as u64);
    assert_eq!(stats.cfgs.builds, 1, "{stats:?}");
    assert_eq!(stats.ilp_structures.builds, 1, "{stats:?}");
    assert_eq!(stats.resolve.resolves, 1, "one re-solve for one report");
}

/// N threads hammering an *overlapping* key set (each key requested by
/// several threads, several distinct keys in flight at once) must build
/// each distinct artifact exactly once, and repeat requesters must get
/// pointer-identical values.
#[test]
fn overlapping_keys_build_exactly_once_each() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    // 12 distinct jobs over one kernel: 2 bounds × 3 cache configs × 2
    // constraint sets — overlapping heavily in CFGs (2), structures (4),
    // cost models (3) and cost shapes (1: the open/closed interrupt
    // graphs differ only in bound values).
    let jobs: Vec<(AnalysisConfig, BoundParams)> = [BoundParams::open(), BoundParams::closed()]
        .into_iter()
        .flat_map(|b| {
            [(false, false), (true, false), (false, true)]
                .into_iter()
                .flat_map(move |(l2, pin)| [true, false].map(|manual| (acfg(l2, pin, manual), b)))
        })
        .collect();
    assert_eq!(jobs.len(), 12);

    let cache = AnalysisCache::new();
    let per_thread: Vec<Vec<Arc<WcetReport>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let jobs = &jobs;
                let cache = &cache;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for round in 0..ROUNDS {
                        // Stagger starting offsets so distinct keys are in
                        // flight concurrently on every round.
                        for k in 0..jobs.len() {
                            let (cfg, bounds) = &jobs[(t + round + k) % jobs.len()];
                            got.push((
                                (t + round + k) % jobs.len(),
                                cache.analyze_with_bounds(EntryPoint::Interrupt, cfg, bounds),
                            ));
                        }
                    }
                    got.sort_by_key(|(i, _)| *i);
                    got.into_iter().map(|(_, r)| r).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every thread saw every key ROUNDS times; all sightings of one key
    // must be the same Arc.
    let reference = &per_thread[0];
    for got in &per_thread {
        assert_eq!(got.len(), ROUNDS * jobs.len());
        for (i, r) in got.iter().enumerate() {
            assert!(
                Arc::ptr_eq(&reference[(i / ROUNDS) * ROUNDS], r),
                "every sighting of a key must be the one shared Arc"
            );
        }
    }

    let stats = cache.stats();
    let total = (THREADS * ROUNDS * jobs.len()) as u64;
    assert_eq!(stats.reports.lookups, total, "{stats:?}");
    assert_eq!(
        stats.reports.builds, 12,
        "one build per distinct job: {stats:?}"
    );
    assert_eq!(stats.cfgs.builds, 2, "one CFG per bounds: {stats:?}");
    assert_eq!(
        stats.ilp_structures.builds, 4,
        "bounds × manual structures: {stats:?}"
    );
    assert_eq!(
        stats.cost_models.builds, 3,
        "l2-off, l2-on, pinned (the interrupt path touches pinned lines, \
         so pinning stays a distinct model): {stats:?}"
    );
    assert_eq!(
        stats.resolve.resolves, stats.reports.builds,
        "exactly one re-solve per built report: {stats:?}"
    );
    assert_eq!(
        stats.costs.builds, 3,
        "open/closed interrupt CFGs share one cost shape, so one cost \
         vector per model: {stats:?}"
    );
}

/// The presolved ILP's basis seed is built once even when many threads
/// race `warm_up`/`resolve_with_objective`, and every re-solve reports
/// the same deterministic pivot counts.
#[test]
fn ilp_basis_seed_is_shared_across_threads() {
    const THREADS: usize = 8;
    use std::collections::HashSet;
    let ilp = rt_wcet::ipet_ilp(EntryPoint::Interrupt, &acfg(false, false, true));
    let presolved = ilp.model.presolved().expect("presolve");
    // The canonical-cost objective, rebuilt the way the cache builds it.
    let layout = rt_kernel::kprog::Layout::new();
    let graph = rt_wcet::kmodel::build_cfg_with(
        EntryPoint::Interrupt,
        KernelConfig::after(),
        &BoundParams::default(),
    );
    let model = rt_wcet::cost::CostModel {
        l2: false,
        l2_kernel_locked: false,
        pinned_i: HashSet::new(),
        pinned_d: HashSet::new(),
    };
    let costs = rt_wcet::analysis::node_costs(&graph, &layout, &model);
    let objective = ilp.objective_for(&costs.node, &costs.edge);
    let seed_pivots: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let presolved = &presolved;
                s.spawn(move || presolved.warm_up().expect("seed"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // warm_up reports the one-off seed cost: identical from every thread
    // (idempotent fetch of the single shared seed).
    for &p in &seed_pivots[1..] {
        assert_eq!(p, seed_pivots[0], "seed built once, cost reported once");
    }
    // Concurrent re-solves against the shared seed agree exactly.
    let solutions: Vec<(i64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let presolved = &presolved;
                let objective = &objective;
                s.spawn(move || {
                    let sol = presolved
                        .resolve_with_objective(objective)
                        .expect("resolve");
                    (sol.objective.to_i64(), sol.stats.pivots())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for sol in &solutions[1..] {
        assert_eq!(
            sol, &solutions[0],
            "re-solves from one seed are deterministic"
        );
    }
}
