//! Integration tests for the paper-flagged extension experiments:
//! open-vs-closed systems (§6.1), L2 kernel locking (§4/§8), and the
//! restartable-system-call overhead (§2.1).

use rt_bench::tables;
use rt_kernel::kernel::EntryPoint;

#[test]
fn after_kernel_eliminates_the_open_closed_distinction() {
    // §6.1: "Our work now eliminates the need for this distinction, as
    // the latencies for the open-system scenarios are no more than that
    // of the closed system."
    let rows = tables::open_closed();
    let sys = rows
        .iter()
        .find(|r| r.entry == EntryPoint::Syscall)
        .expect("syscall row");
    // Before: the open system is catastrophically worse than the closed.
    assert!(
        sys.before_open > 5 * sys.before_closed,
        "before-kernel open {} vs closed {}",
        sys.before_open,
        sys.before_closed
    );
    // After: even the fully open system beats the before-kernel's closed
    // bound.
    assert!(
        sys.after_open <= sys.before_closed,
        "after-open {} should not exceed before-closed {}",
        sys.after_open,
        sys.before_closed
    );
    // And within the after kernel, closed <= open trivially.
    for r in &rows {
        assert!(r.after_closed <= r.after_open, "{:?}", r.entry);
    }
}

#[test]
fn l2_kernel_lock_tightens_every_bound() {
    // §4: locking the kernel into the L2 "would drastically reduce
    // execution time even further ... resulting in a tighter upper bound".
    let rows = tables::l2lock(4);
    for r in &rows {
        assert!(
            r.computed_locked < r.computed_unlocked,
            "{:?}: locked bound {} !< unlocked {}",
            r.entry,
            r.computed_locked,
            r.computed_unlocked
        );
        // Soundness holds in the locked configuration too.
        assert!(
            r.observed_locked <= r.computed_locked,
            "{:?}: observed {} exceeds locked bound {}",
            r.entry,
            r.observed_locked,
            r.computed_locked
        );
    }
    // The interrupt path gains the most (its bound was fetch-dominated).
    let gain = |r: &tables::L2LockRow| 1.0 - r.computed_locked as f64 / r.computed_unlocked as f64;
    let irq = rows
        .iter()
        .find(|r| r.entry == EntryPoint::Interrupt)
        .expect("row");
    let sys = rows
        .iter()
        .find(|r| r.entry == EntryPoint::Syscall)
        .expect("row");
    assert!(gain(irq) > gain(sys));
}

#[test]
fn restart_overhead_is_within_the_fluke_bound() {
    // §2.1 cites Fluke: restart overheads are "at most 8% of the cost of
    // the operations themselves". Allow a small margin over 8% for model
    // differences, but it must stay the same order.
    let r = tables::restart_overhead();
    assert!(r.restarts > 32, "expected ~63 restarts, got {}", r.restarts);
    let pct = r.percent();
    assert!(
        (0.0..12.0).contains(&pct),
        "restart overhead {pct:.1}% out of the Fluke ballpark"
    );
}
