//! Integration tests of the two address-space designs (§3.6): mapping,
//! unmapping, stale-reference safety under the ASID design, eager
//! back-pointer maintenance under the shadow design, and preemptible
//! address-space teardown.

use rt_hw::HwConfig;
use rt_kernel::cap::{insert_cap, CapType, SlotRef};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig, SchedKind, VmKind};
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::untyped::RetypeKind;
use rt_kernel::vspace::{PdEntry, PtEntry};

/// Boots a kernel with an allocator task, an untyped region and the given
/// VM design; returns `(kernel, untyped cptr, cnode cptr)`.
fn boot(vm: VmKind) -> (Kernel, u32, u32) {
    let cfg = KernelConfig {
        sched: SchedKind::BennoBitmap,
        vm,
        preemption_points: true,
        fastpath: true,
    };
    let (mut k, _task, ut, dest) = rt_bench::workloads::retype_kernel(cfg, HwConfig::default(), 22);
    // The ASID design needs an ASID pool and the control cap plumbing;
    // install a pool directly.
    if vm == VmKind::Asid {
        let pool = k.boot_alloc().alloc(12);
        let pool_id = k.objs.insert(
            pool,
            12,
            rt_kernel::obj::ObjKind::AsidPool(rt_kernel::vspace::AsidPool::new()),
        );
        k.asid_table.install_pool(pool_id).expect("room");
        let cnode = match k.objs.tcb(k.current()).cspace_root {
            CapType::CNode { obj, .. } => obj,
            _ => unreachable!(),
        };
        insert_cap(
            &mut k.objs,
            SlotRef::new(cnode, 9),
            CapType::AsidPool(pool_id),
            None,
        );
    }
    (k, ut, dest)
}

fn run(k: &mut Kernel, sys: Syscall) -> SyscallOutcome {
    let mut out;
    loop {
        out = k.handle_syscall(sys.clone());
        if out != SyscallOutcome::Preempted {
            return out;
        }
    }
}

fn ok(k: &mut Kernel, sys: Syscall) {
    let out = run(k, sys.clone());
    assert_eq!(out, SyscallOutcome::Completed(Ok(())), "{sys:?}");
}

/// Creates PD (slot 16), PT (slot 17), frame (slot 18) and maps the frame
/// at `vaddr`.
fn build_mapping(k: &mut Kernel, ut: u32, dest: u32, vaddr: u32, asid: bool) {
    ok(
        k,
        Syscall::Retype {
            untyped: ut,
            kind: RetypeKind::PageDirectory,
            count: 1,
            dest_cnode: dest,
            dest_offset: 16,
        },
    );
    ok(
        k,
        Syscall::Retype {
            untyped: ut,
            kind: RetypeKind::PageTable,
            count: 1,
            dest_cnode: dest,
            dest_offset: 17,
        },
    );
    ok(
        k,
        Syscall::Retype {
            untyped: ut,
            kind: RetypeKind::Frame { size_bits: 12 },
            count: 1,
            dest_cnode: dest,
            dest_offset: 18,
        },
    );
    if asid {
        ok(k, Syscall::AssignAsid { pool: 9, pd: 16 });
    }
    ok(
        k,
        Syscall::MapPageTable {
            pt: 17,
            pd: 16,
            vaddr,
        },
    );
    ok(
        k,
        Syscall::MapFrame {
            frame: 18,
            pd: 16,
            vaddr,
        },
    );
}

fn frame_mapped(k: &Kernel, vaddr: u32) -> bool {
    // Walk all PDs looking for a translation of vaddr.
    for (_, o) in k.objs.iter() {
        if let rt_kernel::obj::ObjKind::PageDirectory(pd) = &o.kind {
            match pd.entries[rt_kernel::vspace::pd_index(vaddr) as usize] {
                PdEntry::Table { pt } => {
                    if matches!(
                        k.objs.pt(pt).entries[rt_kernel::vspace::pt_index(vaddr) as usize],
                        PtEntry::Page { .. }
                    ) {
                        return true;
                    }
                }
                PdEntry::Section { .. } => return true,
                _ => {}
            }
        }
    }
    false
}

#[test]
fn map_unmap_round_trip_both_designs() {
    for vm in [VmKind::Asid, VmKind::ShadowPt] {
        let (mut k, ut, dest) = boot(vm);
        build_mapping(&mut k, ut, dest, 0x0040_0000, vm == VmKind::Asid);
        assert!(frame_mapped(&k, 0x0040_0000), "{vm:?}");
        invariants::assert_all(&k);
        ok(&mut k, Syscall::UnmapFrame { frame: 18 });
        assert!(!frame_mapped(&k, 0x0040_0000), "{vm:?}");
        invariants::assert_all(&k);
    }
}

#[test]
fn double_map_rejected() {
    for vm in [VmKind::Asid, VmKind::ShadowPt] {
        let (mut k, ut, dest) = boot(vm);
        build_mapping(&mut k, ut, dest, 0x0040_0000, vm == VmKind::Asid);
        let out = run(
            &mut k,
            Syscall::MapFrame {
                frame: 18,
                pd: 16,
                vaddr: 0x0050_0000,
            },
        );
        assert_eq!(
            out,
            SyscallOutcome::Completed(Err(rt_kernel::syscall::SysError::AlreadyMapped)),
            "{vm:?}"
        );
    }
}

#[test]
fn asid_design_tolerates_stale_frame_caps() {
    // §3.6: "by instead indirecting through the ASID table, the references
    // from each frame cap, whilst stale, are harmless."
    let (mut k, ut, dest) = boot(VmKind::Asid);
    build_mapping(&mut k, ut, dest, 0x0040_0000, true);
    // Delete the PD (lazy: drops the ASID entry + TLB flush). The frame
    // cap still carries the stale ASID.
    ok(&mut k, Syscall::Delete { cptr: 16 });
    // Unmapping through the stale ASID must be a harmless no-op.
    let out = run(&mut k, Syscall::UnmapFrame { frame: 18 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    invariants::assert_all(&k);
}

#[test]
fn shadow_design_purges_frame_caps_eagerly() {
    // §3.6: "all mapping and unmapping operations, along with address
    // space deletion must eagerly update all back-pointers to avoid any
    // dangling references."
    let (mut k, ut, dest) = boot(VmKind::ShadowPt);
    build_mapping(&mut k, ut, dest, 0x0040_0000, false);
    // Deleting the page table must clear the frame cap's mapping.
    ok(&mut k, Syscall::Delete { cptr: 17 });
    let cnode = match k.objs.tcb(k.current()).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    match &k.objs.cnode(cnode).slot(18).cap {
        CapType::Frame { mapping, .. } => {
            assert!(mapping.is_none(), "frame cap mapping must be purged");
        }
        other => panic!("slot 18 holds {other:?}"),
    }
    invariants::assert_all(&k);
}

#[test]
fn shadow_pd_teardown_is_preemptible() {
    let (mut k, ut, dest) = boot(VmKind::ShadowPt);
    build_mapping(&mut k, ut, dest, 0x0040_0000, false);
    // Map a few more sections to give the teardown several entries.
    for (i, vaddr) in [0x0080_0000u32, 0x00c0_0000, 0x0100_0000]
        .iter()
        .enumerate()
    {
        ok(
            &mut k,
            Syscall::Retype {
                untyped: ut,
                kind: RetypeKind::Frame { size_bits: 20 },
                count: 1,
                dest_cnode: dest,
                dest_offset: 20 + i as u32,
            },
        );
        ok(
            &mut k,
            Syscall::MapFrame {
                frame: 20 + i as u32,
                pd: 16,
                vaddr: *vaddr,
            },
        );
    }
    // Raise an IRQ so the teardown preempts at least once.
    let now = k.machine.now();
    k.machine.irq.raise(rt_hw::IrqLine(6), now);
    let first = k.handle_syscall(Syscall::Delete { cptr: 16 });
    assert_eq!(first, SyscallOutcome::Preempted, "teardown must preempt");
    // Drive to completion.
    ok(&mut k, Syscall::Delete { cptr: 16 });
    // Every frame cap's mapping is gone (no dangling Pd references).
    let cnode = match k.objs.tcb(k.current()).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    for slot in [18u32, 20, 21, 22] {
        if let CapType::Frame { mapping, .. } = &k.objs.cnode(cnode).slot(slot).cap {
            assert!(mapping.is_none(), "slot {slot} still mapped");
        }
    }
    invariants::assert_all(&k);
}

#[test]
fn asid_assignment_scans_the_pool() {
    let (mut k, ut, dest) = boot(VmKind::Asid);
    ok(
        &mut k,
        Syscall::Retype {
            untyped: ut,
            kind: RetypeKind::PageDirectory,
            count: 1,
            dest_cnode: dest,
            dest_offset: 16,
        },
    );
    // Fill the first 100 pool slots so the scan has work to do.
    let pool = k.asid_table.pools[0].expect("pool installed");
    for i in 0..100 {
        k.objs.asid_pool_mut(pool).entries[i] = Some(rt_kernel::obj::ObjId(0));
    }
    let t0 = k.machine.now();
    ok(&mut k, Syscall::AssignAsid { pool: 9, pd: 16 });
    let dt = k.machine.now() - t0;
    // The PD got ASID 100.
    let cnode = match k.objs.tcb(k.current()).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    match k.objs.cnode(cnode).slot(16).cap {
        CapType::PageDirectory { asid, .. } => assert_eq!(asid, Some(100)),
        ref other => panic!("slot 16 holds {other:?}"),
    }
    // The scan cost grows with occupancy (the §3.6 pathology).
    assert!(dt > 1000, "scan suspiciously cheap: {dt}");
}

#[test]
fn wrong_vm_design_rejected() {
    let (mut k, _ut, _dest) = boot(VmKind::ShadowPt);
    let out = run(&mut k, Syscall::AssignAsid { pool: 9, pd: 16 });
    assert_eq!(
        out,
        SyscallOutcome::Completed(Err(rt_kernel::syscall::SysError::WrongVmDesign))
    );
}
