//! CNode destruction: deleting the final cap to a CNode deletes every
//! contained capability first (recursively destroying objects whose final
//! caps live inside), one slot per preemption segment, with cycles broken
//! the way seL4's zombie caps break them.

use rt_hw::{HwConfig, IrqLine};
use rt_kernel::cap::{insert_cap, Badge, CapType, Rights, SlotRef};
use rt_kernel::invariants;
use rt_kernel::kernel::{Kernel, KernelConfig};
use rt_kernel::syscall::{Syscall, SyscallOutcome};
use rt_kernel::tcb::ThreadState;

/// Boots a kernel whose task (prio 100) has a root CNode holding, at
/// cptr 8, the final cap to a scratch CNode populated with `n` endpoint
/// caps (each the final cap to its endpoint).
fn boot(n: u32) -> (Kernel, rt_kernel::obj::ObjId, Vec<rt_kernel::obj::ObjId>) {
    let mut k = Kernel::new(KernelConfig::after(), HwConfig::default());
    let root_cn = k.boot_cnode(8);
    let root = CapType::CNode {
        obj: root_cn,
        guard_bits: 24,
        guard: 0,
    };
    let task = k.boot_tcb("task", 100);
    k.objs.tcb_mut(task).cspace_root = root;
    let scratch = k.boot_cnode(6);
    insert_cap(
        &mut k.objs,
        SlotRef::new(root_cn, 8),
        CapType::CNode {
            obj: scratch,
            guard_bits: 0,
            guard: 0,
        },
        None,
    );
    let mut eps = Vec::new();
    for i in 0..n {
        let ep = k.boot_endpoint();
        insert_cap(
            &mut k.objs,
            SlotRef::new(scratch, i),
            CapType::Endpoint {
                obj: ep,
                badge: Badge(i),
                rights: Rights::ALL,
            },
            None,
        );
        eps.push(ep);
    }
    k.objs.tcb_mut(task).state = ThreadState::Running;
    k.force_current_for_test(task);
    (k, scratch, eps)
}

#[test]
fn destroying_a_cnode_destroys_contained_finals() {
    let (mut k, scratch, eps) = boot(12);
    let out = k.handle_syscall(Syscall::Delete { cptr: 8 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(!k.objs.is_live(scratch), "CNode object destroyed");
    for ep in eps {
        assert!(!k.objs.is_live(ep), "contained final caps destroy objects");
    }
    invariants::assert_all(&k);
}

#[test]
fn shared_objects_survive_cnode_teardown() {
    let (mut k, scratch, eps) = boot(4);
    // Give ep[0] a second cap in the root CNode: it is no longer final in
    // the scratch node.
    let root_cn = match k.objs.tcb(k.current()).cspace_root {
        CapType::CNode { obj, .. } => obj,
        _ => unreachable!(),
    };
    insert_cap(
        &mut k.objs,
        SlotRef::new(root_cn, 9),
        CapType::Endpoint {
            obj: eps[0],
            badge: Badge(0),
            rights: Rights::ALL,
        },
        Some(SlotRef::new(scratch, 0)),
    );
    let out = k.handle_syscall(Syscall::Delete { cptr: 8 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(k.objs.is_live(eps[0]), "shared endpoint survives");
    assert!(!k.objs.is_live(eps[1]), "exclusive endpoints do not");
    invariants::assert_all(&k);
}

#[test]
fn self_referential_cnode_destroys_cleanly() {
    let (mut k, scratch, _eps) = boot(2);
    // The scratch CNode holds a cap to itself — the cyclic case zombie
    // caps exist for.
    insert_cap(
        &mut k.objs,
        SlotRef::new(scratch, 5),
        CapType::CNode {
            obj: scratch,
            guard_bits: 0,
            guard: 0,
        },
        None,
    );
    let out = k.handle_syscall(Syscall::Delete { cptr: 8 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    assert!(!k.objs.is_live(scratch));
    invariants::assert_all(&k);
}

#[test]
fn teardown_preempts_per_slot_and_resumes() {
    let (mut k, scratch, _eps) = boot(16);
    // An interrupt pending at every entry forces one slot per segment.
    let mut entries = 0;
    loop {
        entries += 1;
        assert!(entries < 100, "no forward progress");
        let now = k.machine.now();
        k.machine.irq.raise(IrqLine(9), now);
        match k.handle_syscall(Syscall::Delete { cptr: 8 }) {
            SyscallOutcome::Completed(r) => {
                r.expect("delete succeeds");
                break;
            }
            SyscallOutcome::Preempted => {
                invariants::assert_all(&k);
                continue;
            }
        }
    }
    assert!(entries > 8, "expected many preemptions, got {entries}");
    assert!(!k.objs.is_live(scratch));
    invariants::assert_all(&k);
}

#[test]
fn nested_cnodes_torn_down_recursively() {
    let (mut k, scratch, _eps) = boot(2);
    // scratch contains an inner CNode which itself contains an endpoint.
    let inner = k.boot_cnode(4);
    let ep = k.boot_endpoint();
    insert_cap(
        &mut k.objs,
        SlotRef::new(inner, 3),
        CapType::Endpoint {
            obj: ep,
            badge: Badge::NONE,
            rights: Rights::ALL,
        },
        None,
    );
    insert_cap(
        &mut k.objs,
        SlotRef::new(scratch, 7),
        CapType::CNode {
            obj: inner,
            guard_bits: 0,
            guard: 0,
        },
        None,
    );
    let out = k.handle_syscall(Syscall::Delete { cptr: 8 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    for o in [scratch, inner, ep] {
        assert!(!k.objs.is_live(o));
    }
    invariants::assert_all(&k);
}

#[test]
fn decode_through_destroyed_root_fails_cleanly() {
    // A thread whose cspace root was destroyed must get a decode error,
    // not a panic (roots are held by value in this model).
    let (mut k, scratch, _eps) = boot(1);
    let victim = k.boot_tcb("victim", 5);
    k.objs.tcb_mut(victim).cspace_root = CapType::CNode {
        obj: scratch,
        guard_bits: 26,
        guard: 0,
    };
    let out = k.handle_syscall(Syscall::Delete { cptr: 8 });
    assert_eq!(out, SyscallOutcome::Completed(Ok(())));
    // The victim now decodes through a dead root.
    k.objs.tcb_mut(victim).state = ThreadState::Running;
    k.force_current_for_test(victim);
    let out = k.handle_syscall(Syscall::Signal { cptr: 0 });
    assert_eq!(
        out,
        SyscallOutcome::Completed(Err(rt_kernel::syscall::SysError::Decode(
            rt_kernel::cnode::DecodeError::InvalidRoot
        )))
    );
}
