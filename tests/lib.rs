//! Cross-crate integration tests live in `tests/tests/`; this library
//! holds shared scenario helpers.

#![forbid(unsafe_code)]

use rt_hw::HwConfig;
use rt_kernel::kernel::{Kernel, KernelConfig};

/// Both paper configurations, for tests that sweep them.
pub fn both_kernels() -> [KernelConfig; 2] {
    [KernelConfig::before(), KernelConfig::after()]
}

/// A fresh kernel on default hardware.
pub fn fresh(cfg: KernelConfig) -> Kernel {
    Kernel::new(cfg, HwConfig::default())
}
